"""Address spaces (``vm_map``) and the page-fault path.

An :class:`AddressSpace` is an ordered set of :class:`VMEntry` ranges,
each mapping a window of a :class:`~repro.mem.vmobject.VMObject` with a
protection and an inheritance mode (shared vs private).  The fault
handler here implements the full resolution order — PTE hit, resident
in object, shadow-chain copy-up, pager, zero-fill — and defers frozen
pages (checkpoint COW) to the engine installed in the
:class:`MemContext`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.errors import MappingError, SegmentationFault
from repro.hw.specs import DEFAULT_CPU, CpuCostModel
from repro.mem.page import Page
from repro.mem.pagetable import PageTable
from repro.mem.phys import PhysicalMemory
from repro.mem.vmobject import ObjectKind, VMObject
from repro.sim.clock import SimClock
from repro.units import PAGE_MASK, PAGE_SHIFT, PAGE_SIZE, page_align_up

PROT_NONE = 0
PROT_READ = 1
PROT_WRITE = 2
PROT_RW = PROT_READ | PROT_WRITE

#: Default base of the mmap region (keeps low addresses free for text/data).
MMAP_BASE = 0x1000_0000


@dataclass
class FaultStats:
    """Counters for the fault path; several experiments report these."""

    minor: int = 0
    major: int = 0
    cow: int = 0
    zero_fill: int = 0
    pager_in: int = 0

    def total(self) -> int:
        return self.minor + self.major


class MemContext:
    """Shared machine memory state: clock, physical pool, cost model.

    Also carries the *checkpoint epoch* (advanced by the orchestrator at
    every checkpoint) and the pluggable frozen-write resolver installed
    by the Aurora COW engine.
    """

    def __init__(
        self,
        clock: SimClock,
        phys: PhysicalMemory,
        cpu: CpuCostModel = DEFAULT_CPU,
    ):
        self.clock = clock
        self.phys = phys
        self.cpu = cpu
        self.stats = FaultStats()
        #: current checkpoint epoch; pages stamp their dirty_epoch with it
        self.epoch = 1
        #: resolver for writes hitting frozen pages; installed by
        #: :class:`repro.mem.cow.AuroraCow`
        self.frozen_write_handler: Optional[
            Callable[[VMObject, int, Page], Page]
        ] = None
        #: kernel dirty log: (object, pindex, page) tuples appended by
        #: the fault path whenever a page becomes dirty in the current
        #: epoch.  Incremental checkpoints consume this instead of
        #: scanning page tables (the 7× lazy-copy win of Table 3).
        self._dirty_log: list[tuple[VMObject, int, Page]] = []
        self._charge_carry = 0.0

    def log_dirty(self, obj: VMObject, pindex: int, page: Page) -> None:
        """Record that ``page`` was dirtied in the current epoch."""
        page.dirty_epoch = self.epoch
        self._dirty_log.append((obj, pindex, page))

    def drain_dirty_log(self) -> list[tuple[VMObject, int, Page]]:
        """Take and reset the dirty log (checkpoint-time consumption)."""
        log, self._dirty_log = self._dirty_log, []
        return log

    def charge(self, ns: float) -> None:
        """Charge fractional nanoseconds, carrying the remainder.

        Per-page costs are a few ns (or less); accumulating the
        fractional part keeps multi-million-page walks accurate.
        """
        total = ns + self._charge_carry
        whole = int(total)
        self._charge_carry = total - whole
        if whole > 0:
            self.clock.advance(whole)


@dataclass
class VMEntry:
    """One mapped range of an address space."""

    start: int
    end: int
    obj: VMObject
    offset_pages: int
    prot: int
    shared: bool
    name: str = ""
    #: sls_mctl: excluded ranges are not captured by checkpoints
    sls_exclude: bool = False
    #: sls_mctl lazy-restore hint: "", "eager", or "lazy"
    restore_hint: str = ""
    aspace: "AddressSpace" = field(default=None, repr=False)  # type: ignore[assignment]

    @property
    def size(self) -> int:
        return self.end - self.start

    @property
    def start_vpn(self) -> int:
        return self.start >> PAGE_SHIFT

    @property
    def end_vpn(self) -> int:
        return self.end >> PAGE_SHIFT

    def pindex_of(self, vpn: int) -> int:
        return self.offset_pages + (vpn - self.start_vpn)

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end


class AddressSpace:
    """A process's virtual memory map plus its page table."""

    _next_asid = 1

    def __init__(self, mem: MemContext, name: str = ""):
        self.asid = AddressSpace._next_asid
        AddressSpace._next_asid += 1
        self.mem = mem
        self.name = name or f"as{self.asid}"
        self.pagetable = PageTable()
        self.entries: list[VMEntry] = []

    # -- map management ------------------------------------------------------

    def _find_free(self, length: int) -> int:
        addr = MMAP_BASE
        for entry in self.entries:
            if addr + length <= entry.start:
                return addr
            addr = max(addr, entry.end)
        return addr

    def _overlaps(self, start: int, end: int) -> bool:
        return any(e.start < end and start < e.end for e in self.entries)

    def mmap(
        self,
        length: int,
        prot: int = PROT_RW,
        shared: bool = False,
        obj: Optional[VMObject] = None,
        offset: int = 0,
        addr: Optional[int] = None,
        name: str = "",
    ) -> VMEntry:
        """Map ``length`` bytes; anonymous unless ``obj`` is given.

        Passing an existing ``obj`` takes a new reference on it (the
        caller keeps its own).
        """
        if length <= 0:
            raise MappingError("mmap length must be positive")
        if offset & PAGE_MASK:
            raise MappingError("mmap offset must be page aligned")
        length = page_align_up(length)
        if addr is None:
            addr = self._find_free(length)
        elif addr & PAGE_MASK:
            raise MappingError("mmap address must be page aligned")
        if self._overlaps(addr, addr + length):
            raise MappingError(f"mapping [{addr:#x}, {addr + length:#x}) overlaps")
        npages = length >> PAGE_SHIFT
        if obj is None:
            obj = VMObject(self.mem.phys, size_pages=npages, name=name or "anon")
        else:
            obj.ref()
        entry = VMEntry(
            start=addr,
            end=addr + length,
            obj=obj,
            offset_pages=offset >> PAGE_SHIFT,
            prot=prot,
            shared=shared,
            name=name,
            aspace=self,
        )
        obj.register_mapping(entry)
        self.entries.append(entry)
        self.entries.sort(key=lambda e: e.start)
        return entry

    def _split_entry(self, entry: VMEntry, at: int) -> VMEntry:
        """Split ``entry`` at address ``at``; returns the upper half."""
        assert entry.start < at < entry.end and not at & PAGE_MASK
        upper = VMEntry(
            start=at,
            end=entry.end,
            obj=entry.obj.ref(),
            offset_pages=entry.pindex_of(at >> PAGE_SHIFT),
            prot=entry.prot,
            shared=entry.shared,
            name=entry.name,
            aspace=self,
        )
        entry.obj.register_mapping(upper)
        entry.end = at
        self.entries.append(upper)
        self.entries.sort(key=lambda e: e.start)
        return upper

    def entries_covering(
        self, start: int, end: int, split: bool = False
    ) -> list[VMEntry]:
        """Entries intersecting [start, end).

        With ``split=True`` entries straddling either boundary are
        split at it first, so every returned entry lies entirely
        inside the range — the form ``munmap``/``mprotect`` and
        ``sls_mctl`` need to retag exactly the requested pages.
        """
        hits = []
        for entry in list(self.entries):
            if entry.end <= start or entry.start >= end:
                continue
            if split and entry.start < start:
                entry = self._split_entry(entry, start)
            if split and entry.end > end:
                self._split_entry(entry, end)
            hits.append(entry)
        return hits

    # Backwards-compatible alias; prefer the public spelling.
    _entries_covering = entries_covering

    def munmap(self, addr: int, length: int) -> int:
        """Unmap [addr, addr+length); returns the number of entries removed."""
        if addr & PAGE_MASK or length <= 0:
            raise MappingError("munmap range must be page aligned and positive")
        end = addr + page_align_up(length)
        removed = 0
        for entry in self.entries_covering(addr, end, split=True):
            self.pagetable.remove_range(entry.start_vpn, entry.end_vpn)
            entry.obj.unregister_mapping(entry)
            entry.obj.unref()
            self.entries.remove(entry)
            removed += 1
        return removed

    def mprotect(self, addr: int, length: int, prot: int) -> None:
        end = addr + page_align_up(length)
        covered = self.entries_covering(addr, end, split=True)
        if not covered:
            raise MappingError(f"mprotect of unmapped range {addr:#x}")
        for entry in covered:
            entry.prot = prot
            if not prot & PROT_WRITE:
                for vpn in range(entry.start_vpn, entry.end_vpn):
                    self.pagetable.write_protect(vpn)

    def find_entry(self, addr: int) -> Optional[VMEntry]:
        for entry in self.entries:
            if entry.contains(addr):
                return entry
        return None

    # -- fault path ------------------------------------------------------------

    def fault(self, addr: int, for_write: bool) -> Page:
        """Handle a page fault at ``addr``; returns the resolved page."""
        entry = self.find_entry(addr)
        if entry is None:
            raise SegmentationFault(addr)
        needed = PROT_WRITE if for_write else PROT_READ
        if not entry.prot & needed:
            raise SegmentationFault(addr, f"protection violation at {addr:#x}")
        mem = self.mem
        cpu = mem.cpu
        vpn = addr >> PAGE_SHIFT
        pindex = entry.pindex_of(vpn)
        obj = entry.obj

        pte = self.pagetable.lookup(vpn)
        if pte is not None and (not for_write or (pte.writable and not pte.page.frozen)):
            pte.accessed = True
            if for_write:
                pte.dirty = True
            return pte.page

        mem.charge(cpu.fault_trap_ns)

        # Locate (or create) the page.
        page = obj.resident_page(pindex)
        if page is None and obj.shadow is not None:
            backing, _ = obj.shadow.lookup(pindex + obj.shadow_offset)
            if backing is not None:
                if for_write:
                    mem.charge(cpu.cow_fault_ns)
                    mem.stats.cow += 1
                    page = mem.phys.copy(backing)
                    obj.insert_page(pindex, page)
                    mem.log_dirty(obj, pindex, page)
                else:
                    page = backing
        if page is None:
            if obj.pager is not None:
                content = obj.pager(pindex)
                if content is not None:
                    mem.stats.pager_in += 1
                    page = mem.phys.allocate(payload=content)
                    obj.insert_page(pindex, page)
                    obj.swap_slots.pop(pindex, None)
                    if for_write:
                        mem.log_dirty(obj, pindex, page)
                    else:
                        page.dirty_epoch = 0
            if page is None:
                mem.charge(cpu.zero_fill_ns)
                mem.stats.zero_fill += 1
                page = mem.phys.allocate()
                obj.insert_page(pindex, page)
                mem.log_dirty(obj, pindex, page)
            mem.stats.major += 1
        else:
            mem.stats.minor += 1

        # Frozen page hit by a write: Aurora (or fallback) COW.
        if for_write and page.frozen:
            if mem.frozen_write_handler is None:
                raise AssertionError(
                    "write to frozen page with no COW engine installed"
                )
            owner_obj = obj if obj.resident_page(pindex) is page else None
            if owner_obj is None:
                # Frozen backing page under a private mapping was already
                # copied above; reaching here means the frozen page lives
                # in this object's chain — resolve in the owning object.
                _, owner_obj = obj.lookup(pindex)
            page = mem.frozen_write_handler(owner_obj or obj, pindex, page)
            mem.stats.cow += 1

        # Install/refresh the PTE.
        writable = bool(entry.prot & PROT_WRITE) and (
            obj.resident_page(pindex) is page
        ) and not page.frozen
        mem.charge(cpu.pte_install_ns)
        if self.pagetable.lookup(vpn) is None:
            pte = self.pagetable.install(vpn, page, writable)
        else:
            self.pagetable.update_page(vpn, page, writable)
            pte = self.pagetable.lookup(vpn)
        pte.accessed = True
        if for_write:
            pte.dirty = True
        return pte.page

    # -- data access -------------------------------------------------------------

    def write(self, addr: int, data: bytes) -> None:
        """Store ``data`` at ``addr``, faulting pages in as needed."""
        pos = addr
        view = memoryview(bytes(data))
        while view.nbytes:
            within = pos & PAGE_MASK
            chunk = min(PAGE_SIZE - within, view.nbytes)
            page = self.fault(pos, for_write=True)
            page.write(within, bytes(view[:chunk]))
            view = view[chunk:]
            pos += chunk

    def read(self, addr: int, nbytes: int) -> bytes:
        """Load ``nbytes`` from ``addr``, faulting pages in as needed."""
        out = bytearray()
        pos = addr
        while len(out) < nbytes:
            within = pos & PAGE_MASK
            chunk = min(PAGE_SIZE - within, nbytes - len(out))
            page = self.fault(pos, for_write=False)
            out += page.read(within, chunk)
            pos += chunk
        return bytes(out)

    def populate(self, addr: int, nbytes: int, fill: bytes = b"",
                 fill_fn=None) -> int:
        """Eagerly make [addr, addr+nbytes) resident with ``fill`` content.

        A bulk page-allocation path used by workload setup (e.g. a
        Redis instance building its 2 GiB working set) — semantically a
        loop of write faults, charged at the same per-page cost, but
        without the per-fault Python overhead.  ``fill_fn(i) -> bytes``
        gives each page distinct content (defeats dedup, as a real
        key-value heap would).
        """
        if addr & PAGE_MASK:
            raise MappingError("populate address must be page aligned")
        npages = page_align_up(nbytes) >> PAGE_SHIFT
        mem = self.mem
        cpu = mem.cpu
        done = 0
        vpn0 = addr >> PAGE_SHIFT
        for i in range(npages):
            vpn = vpn0 + i
            entry = self.find_entry(vpn << PAGE_SHIFT)
            if entry is None:
                raise SegmentationFault(vpn << PAGE_SHIFT)
            pindex = entry.pindex_of(vpn)
            if entry.obj.resident_page(pindex) is None:
                payload = fill_fn(i) if fill_fn is not None else fill
                page = mem.phys.allocate(payload=payload)
                entry.obj.insert_page(pindex, page)
                mem.log_dirty(entry.obj, pindex, page)
                mem.stats.major += 1
                mem.stats.zero_fill += 1
            page = entry.obj.resident_page(pindex)
            if self.pagetable.lookup(vpn) is None:
                self.pagetable.install(vpn, page, bool(entry.prot & PROT_WRITE))
            done += 1
        mem.charge(npages * (cpu.fault_trap_ns + cpu.zero_fill_ns + cpu.pte_install_ns))
        return done

    # -- fork ---------------------------------------------------------------------

    def fork(self, name: str = "") -> "AddressSpace":
        """Duplicate the map with classic fork COW semantics.

        Shared entries share the VM object.  Private entries get
        *symmetric shadows*: both parent and child receive fresh shadow
        objects over the (now effectively immutable) original, so
        neither side observes the other's post-fork writes.
        """
        child = AddressSpace(self.mem, name=name or f"{self.name}-child")
        for entry in list(self.entries):
            if entry.shared:
                child_entry = child.mmap(
                    length=entry.size,
                    prot=entry.prot,
                    shared=True,
                    obj=entry.obj,
                    offset=entry.offset_pages << PAGE_SHIFT,
                    addr=entry.start,
                    name=entry.name,
                )
                # Pre-share resident PTEs: shared pages are immediately
                # visible to the child without a fault storm.
                for vpn in range(child_entry.start_vpn, child_entry.end_vpn):
                    page = entry.obj.resident_page(child_entry.pindex_of(vpn))
                    if page is not None:
                        child.pagetable.install(
                            vpn, page, bool(entry.prot & PROT_WRITE)
                        )
            else:
                original = entry.obj
                parent_shadow = original.make_shadow(self.mem.phys)
                child_shadow = original.make_shadow(self.mem.phys)
                # Parent entry now maps its shadow; PTEs become read-only
                # so the next write copies up.
                original.unregister_mapping(entry)
                entry.obj = parent_shadow
                parent_shadow.register_mapping(entry)
                # make_shadow refs the original for each shadow; drop the
                # entry's own original reference.
                original.unref()
                for vpn in range(entry.start_vpn, entry.end_vpn):
                    self.pagetable.write_protect(vpn)
                    self.mem.charge(self.mem.cpu.pte_cow_arm_ns)
                child.mmap(
                    length=entry.size,
                    prot=entry.prot,
                    shared=False,
                    obj=child_shadow,
                    offset=0,
                    addr=entry.start,
                    name=entry.name,
                )
                child_shadow.unref()  # mmap took its own reference
        return child

    # -- introspection ---------------------------------------------------------

    def vm_objects(self) -> list[VMObject]:
        """Unique VM objects mapped by this address space (chain heads)."""
        seen: dict[int, VMObject] = {}
        for entry in self.entries:
            obj: Optional[VMObject] = entry.obj
            while obj is not None and obj.oid not in seen:
                seen[obj.oid] = obj
                obj = obj.shadow
        return list(seen.values())

    def resident_pages(self) -> int:
        """Total resident pages across this space's unique VM objects."""
        return sum(o.resident_count() for o in self.vm_objects())

    def resident_bytes(self) -> int:
        return self.resident_pages() * PAGE_SIZE

    def iter_mapped_pages(self) -> Iterator[tuple[VMEntry, int, Page]]:
        """Yield (entry, vaddr, page) for every resident mapped page."""
        for entry in self.entries:
            for vpn in range(entry.start_vpn, entry.end_vpn):
                page, _ = entry.obj.lookup(entry.pindex_of(vpn))
                if page is not None:
                    yield entry, vpn << PAGE_SHIFT, page

    def destroy(self) -> None:
        """Tear down the map, releasing every object reference."""
        for entry in list(self.entries):
            entry.obj.unregister_mapping(entry)
            entry.obj.unref()
        self.entries.clear()
        self.pagetable.clear()

    def __repr__(self) -> str:
        return (
            f"<AddressSpace {self.name} entries={len(self.entries)}"
            f" resident={self.resident_pages()}p>"
        )
