#!/usr/bin/env python
"""Live migration and remote replication (paper §3.1).

Two simulated hosts share a 10 GbE link.  A running application is:

1. continuously *replicated* — every incremental checkpoint streams to
   the standby host ("sending an application's incremental checkpoints
   to both a local disk and a remote machine for replication");
2. then *live-migrated* — iterative pre-copy rounds while it keeps
   running, a final sub-millisecond stop-and-copy, and resumption on
   the target.

Run:  python examples/live_migration.py
"""

from repro import (
    GIB,
    MIB,
    SLS,
    Kernel,
    MigrationReceiver,
    NetworkLink,
    NvmeDevice,
    ObjectStore,
    RemoteBackend,
    Syscalls,
    live_migrate,
    make_disk_backend,
)
from repro.units import KIB, fmt_size, fmt_time


def main() -> int:
    # --- two hosts, one network ------------------------------------------
    src = Kernel(hostname="host-a", memory_bytes=16 * GIB)
    dst = Kernel(hostname="host-b", memory_bytes=16 * GIB, clock=src.clock)
    src_sls, dst_sls = SLS(src), SLS(dst)
    link = NetworkLink(src.clock)
    src_ep, dst_ep = link.attach("host-a"), link.attach("host-b")
    receiver = MigrationReceiver(
        dst_sls,
        ObjectStore(NvmeDevice(src.clock, name="b-nvme"), mem=dst.mem),
        dst_ep,
    )

    # --- a stateful app on host-a -------------------------------------------
    proc = src.spawn("session-server")
    app = Syscalls(src, proc)
    heap = app.mmap(8 * MIB, name="heap")
    app.populate(heap.start, 8 * MIB, fill_fn=lambda i: b"session-%d" % i)
    group = src_sls.persist(proc, name="session-server")
    group.attach(make_disk_backend(src, NvmeDevice(src.clock, name="a-nvme")))
    print(f"[{src.hostname}] session-server pid {proc.pid},"
          f" {proc.aspace.resident_pages()} resident pages")

    # --- continuous replication to host-b -------------------------------------
    replica = RemoteBackend("replica", src_ep, "host-b")
    group.attach(replica)
    src_sls.checkpoint(group)
    for i in range(3):
        app.poke(heap.start + i * 4096, b"update-%d" % i)
        src_sls.checkpoint(group)
    src_sls.barrier(group)
    receiver.pump(wait=True)
    print(f"[{src.hostname}] replicated {replica.images_sent} checkpoints"
          f" ({fmt_size(replica.bytes_sent)}) to {dst.hostname}")
    group.detach("replica")

    # --- live migration ----------------------------------------------------------
    # The app keeps mutating state right up to the migration.
    for i in range(200):
        app.poke(heap.start + (i % 512) * 4 * KIB, b"busy-%d" % i)
    print(f"[{src.hostname}] live-migrating to {dst.hostname}...")
    restored, rep = live_migrate(
        src_sls, group, receiver, src_ep, "host-b", rounds=4
    )
    print(f"  pre-copy+final rounds: {rep.rounds},"
          f" pages shipped: {rep.pages_shipped},"
          f" bytes on wire: {fmt_size(rep.bytes_shipped)}")
    print(f"  total migration time: {fmt_time(rep.total_ns)},"
          f" downtime: {fmt_time(rep.downtime_ns)}")

    # --- the app lives on host-b ------------------------------------------------------
    moved = Syscalls(dst, restored[0])
    state = moved.peek(heap.start, 8).decode()
    print(f"[{dst.hostname}] session-server pid {restored[0].pid}"
          f" serving again, state intact: {state!r}")
    assert src.procs.get(proc.pid) is None, "source incarnation lingers"
    moved.poke(heap.start, b"post-migration-write")
    print(f"[{dst.hostname}] accepting writes:"
          f" {moved.peek(heap.start, 20).decode()!r}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
