#!/usr/bin/env python
"""Serverless computing on Aurora (paper §4).

Deploys several functions as warm checkpoints layered over one shared
runtime image, then demonstrates:

- **warm starts**: invoking a function restores a fresh instance in
  hundreds of microseconds (vs the runtime's multi-hundred-µs cold
  initialization, plus real-world process spawn costs);
- **scale-out**: many concurrent instances restored from one image;
- **density**: the object store holds N functions in barely more space
  than one, thanks to content dedup of the shared runtime.

Run:  python examples/serverless_scaleout.py
"""

from repro import GIB, SLS, Kernel, NvmeDevice, make_disk_backend
from repro.apps.serverless import ServerlessManager
from repro.units import MIB, fmt_time


def main() -> int:
    kernel = Kernel(hostname="lambda-node", memory_bytes=32 * GIB)
    sls = SLS(kernel)
    disk = make_disk_backend(kernel, NvmeDevice(kernel.clock))
    manager = ServerlessManager(sls, backend=disk)

    # --- deploy a small fleet of functions -----------------------------
    print("deploying functions (each = runtime image + tiny delta):")
    for i in range(6):
        deployed = manager.deploy(f"fn-{i}", customize=b"handler-%d" % i)
        print(f"  fn-{i}: delta of {deployed.delta_pages} pages over"
              f" the shared runtime")

    # --- warm starts ------------------------------------------------------
    print("\nwarm-start invocations (lazy restore + hot prefetch):")
    for name in ("fn-0", "fn-3", "fn-5"):
        result = manager.invoke(name, payload=b"event")
        r = result.restore
        print(f"  {name}: restored in {fmt_time(r.total_ns)}"
              f" (read {fmt_time(r.objstore_read_ns)},"
              f" {r.pages_installed} pages eager, {r.pages_lazy} lazy,"
              f" {result.major_faults} demand faults)"
              f" -> {result.output.decode()}")

    # --- scale out one hot function ------------------------------------------
    print("\nscaling out fn-0 to 10 instances:")
    latencies = []
    for i in range(10):
        result = manager.invoke("fn-0", payload=b"req-%d" % i,
                                keep_instance=True)
        latencies.append(result.restore.total_ns)
    print(f"  mean instance start: {fmt_time(int(sum(latencies) / 10))},"
          f" max: {fmt_time(max(latencies))}")

    # --- density report ------------------------------------------------------------
    density = manager.density_report()
    print("\nstore density (the dedup story):")
    print(f"  {density['functions']} functions,"
          f" logical {density['logical_bytes'] / MIB:.1f} MiB,"
          f" physical {density['physical_bytes'] / MIB:.1f} MiB"
          f" -> {density['dedup_ratio']:.1f}x dedup,"
          f" {density['unique_pages']} unique pages")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
