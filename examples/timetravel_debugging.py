#!/usr/bin/env python
"""Time-travel debugging and speculation (paper §4).

Part 1 — a service corrupts an invariant at some point during its run;
the incremental checkpoint history lets us *bisect execution history*
to the first bad checkpoint, and inspect a live clone of it, all while
the buggy service keeps running.

Part 2 — a speculating client uses ``sls_rollback`` to undo a failed
optimistic send; Aurora notifies it so it can take the conservative
path.

Run:  python examples/timetravel_debugging.py
"""

from repro import GIB, KIB, MSEC, SLS, Kernel, MemoryBackend, NvmeDevice, make_disk_backend
from repro.apps.debugger import TimeTravelDebugger
from repro.apps.speculation import SpeculativeClient
from repro.posix.syscalls import Syscalls
from repro.units import fmt_time


def main() -> int:
    kernel = Kernel(hostname="devbox", memory_bytes=8 * GIB)
    sls = SLS(kernel)

    # --- part 1: bisecting history -------------------------------------
    print("== time-travel debugging ==")
    proc = kernel.spawn("ledger-service")
    app = Syscalls(kernel, proc)
    ledger = app.mmap(64 * KIB, name="ledger")
    app.poke(ledger.start, b"balance=+100")
    group = sls.persist(proc, name="ledger-service")
    group.attach(MemoryBackend("memory"))  # ephemeral debug checkpoints

    # The service runs; at step 7 a bug flips the balance sign, and
    # every later step builds on the corrupted state.
    for step in range(10):
        if step == 7:
            app.poke(ledger.start + 8, b"-")  # the bug
        app.poke(ledger.start + 9, b"%03d" % (100 + step))
        sls.checkpoint(group)
    print(f"service ran 10 steps; history holds {len(group.images)}"
          f" checkpoints; live state: {app.peek(ledger.start, 12).decode()}")

    ttd = TimeTravelDebugger(sls, group)
    culprit = ttd.bisect(
        lambda session: session.read_memory(ledger.start + 8, 1) == b"+"
    )
    index = group.images.index(culprit)
    print(f"bisect: invariant first broken at checkpoint #{index}"
          f" ({culprit.name})")

    session = ttd.inspect(index - 1)
    print(f"inspecting the last good checkpoint (#{index - 1}):"
          f" {session.read_memory(ledger.start, 12).decode()}")
    session.close()
    print(f"(the live service kept running the whole time:"
          f" {app.peek(ledger.start, 12).decode()})")

    # --- part 2: speculation via rollback -----------------------------------
    print("\n== speculative execution ==")
    disk = make_disk_backend(kernel, NvmeDevice(kernel.clock))
    client = SpeculativeClient(kernel, sls)
    client.persist(disk)
    for attempt, acked in enumerate([True, True, False]):
        client.speculative_send(b"txn-%d" % attempt)
        client.outcome(acked=acked)
        verdict = "committed" if acked else "ROLLED BACK (notified)"
        print(f"  txn-{attempt}: {verdict}; client state ="
              f" {client.state().rstrip(bytes(1)).decode()}")
    s = client.stats
    print(f"speculation summary: {s.commits} commits saved"
          f" {fmt_time(s.time_saved_ns)} of round trips;"
          f" {s.rollbacks} rollback(s) cost nothing visible to peers")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
