#!/usr/bin/env python
"""Porting databases to Aurora (paper §4).

Runs the same workloads on upstream persistence mechanisms and on the
Aurora ports:

- Redis-like KV store: AOF + fsync and fork-based BGSAVE, vs
  ``sls_ntflush`` + ``sls_checkpoint`` ("our initial port is already
  faster with less code");
- RocksDB-like LSM tree: per-write WAL fsync vs ``sls_ntflush``, and a
  crash-recovery pass that restores the checkpoint and replays the log
  tail.

Run:  python examples/database_port.py
"""

from repro import GIB, MIB, SLS, Kernel, NvmeDevice, make_disk_backend
from repro.apps.kvstore import (
    AuroraPersistence,
    ClassicPersistence,
    RedisLikeServer,
)
from repro.apps.lsmtree import AuroraLog, ClassicWal, LsmTree
from repro.units import fmt_time

COMMITS = 100


def redis_demo(kernel, sls) -> None:
    print("== Redis port ==")
    server = RedisLikeServer(kernel, working_set=64 * MIB)
    server.load_dataset()
    classic = ClassicPersistence(server, NvmeDevice(kernel.clock, name="aof0"))
    group = sls.persist(server.proc, name="redis")
    group.attach(make_disk_backend(kernel, NvmeDevice(kernel.clock, name="sls0")))
    server.attach_api(sls)
    aurora = AuroraPersistence(server)

    aof = sum(classic.append_and_fsync(b"SET k%d v" % i)
              for i in range(COMMITS)) // COMMITS
    ntf = sum(aurora.append_and_commit(b"SET k%d v" % i)
              for i in range(COMMITS)) // COMMITS
    print(f"  commit latency: AOF+fsync {fmt_time(aof)}  vs"
          f"  sls_ntflush {fmt_time(ntf)}  ({aof / ntf:.1f}x)")

    aurora.save()
    server.dirty_fraction(0.1)
    sls_stop = aurora.save()
    fork_stall = classic.bgsave()
    print(f"  snapshot stall: BGSAVE fork {fmt_time(fork_stall)}  vs"
          f"  sls_checkpoint {fmt_time(sls_stop)}  "
          f"({fork_stall / sls_stop:.1f}x)")


def lsm_demo(kernel, sls) -> None:
    print("== RocksDB port ==")
    tree = LsmTree(kernel, name="rocksdb", data_dir="/rocks")
    group = sls.persist(tree.proc, name="rocksdb")
    group.attach(make_disk_backend(kernel, NvmeDevice(kernel.clock, name="sls1")))
    api = tree.attach_api(sls)
    log = AuroraLog(api)
    tree.commit_log = log

    with kernel.clock.region() as region:
        for i in range(COMMITS):
            tree.put(b"key-%06d" % i, b"value-%d" % i)
    print(f"  {COMMITS} committed writes in {fmt_time(region.elapsed)}"
          f" ({fmt_time(region.elapsed // COMMITS)}/write),"
          f" {tree.flushes} memtable flushes, {tree.compactions} compactions")

    # Crash recovery: checkpoint covers the bulk, the log the tail.
    api.sls_checkpoint(name="db-consistent")
    api.sls_log_truncate(log.records + 1)
    tree.put(b"key-tail", b"logged-after-checkpoint")
    # ... crash: roll back to the checkpoint, replay the ntflush tail.
    api.sls_rollback()
    tree.memtable.pop(b"key-tail", None)  # state lost with the crash
    replayed = log.replay_into(tree)
    print(f"  recovery: rollback + replayed {replayed} log record(s);"
          f" key-tail = {tree.get(b'key-tail').decode()}")


def main() -> int:
    kernel = Kernel(hostname="dbhost", memory_bytes=16 * GIB)
    sls = SLS(kernel)
    redis_demo(kernel, sls)
    print()
    lsm_demo(kernel, sls)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
