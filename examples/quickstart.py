#!/usr/bin/env python
"""Quickstart: transparent persistence in a dozen lines.

Boots a simulated Aurora machine, runs an application that keeps all
its state in memory (no save files, no fsync — "developers design
programs as if they never crash"), checkpoints it continuously, pulls
the plug, and resumes it from disk on a freshly booted kernel.

Run:  python examples/quickstart.py [--architecture]
"""

import sys

from repro import (
    GIB,
    KIB,
    MSEC,
    SLS,
    Kernel,
    NvmeDevice,
    ObjectStore,
    Syscalls,
    make_disk_backend,
)
from repro.core.restore import load_image_from_store
from repro.units import fmt_time

ARCHITECTURE = r"""
    Application      libsls        sls(1)
  ------------------------------------------- Userspace
                     ioctl                     Kernel
   IPC  Socket  VFS  Process  Thread   [POSIX objects]
     \     |     |      |       /
      +----+-----+------+------+
      |     SLS Orchestrator   |------ Virtual Memory
      +-----------+------------+
          |       |        \
      TCP/IP   Object     SLS File
        |      Store       System
  ------------------------------------------- Kernel
       NIC      NVMe       NVDIMM             Hardware
"""


def main() -> int:
    if "--architecture" in sys.argv:
        print(ARCHITECTURE)
        return 0

    # --- boot a machine with an Optane-class NVMe drive ---------------
    kernel = Kernel(hostname="aurora0", memory_bytes=8 * GIB)
    sls = SLS(kernel)
    nvme = NvmeDevice(kernel.clock)

    # --- run an ordinary in-memory application -------------------------
    proc = kernel.spawn("counter-app")
    app = Syscalls(kernel, proc)
    heap = app.mmap(256 * KIB, name="heap")
    app.poke(heap.start, b"count=0000")
    print(f"[{kernel.hostname}] app pid {proc.pid} running,"
          f" state: {app.peek(heap.start, 10).decode()}")

    # --- one command makes it persistent -------------------------------
    group = sls.persist(proc, name="counter-app",
                        period_ns=10 * MSEC, auto_checkpoint=True)
    group.attach(make_disk_backend(kernel, nvme))

    # --- the app just works; Aurora checkpoints 100x/sec behind it -----
    for i in range(1, 6):
        app.poke(heap.start, b"count=%04d" % i)
        kernel.run_for(10 * MSEC)
    sls.barrier(group)
    stats = group.stats
    print(f"[{kernel.hostname}] {stats.checkpoints_taken} checkpoints taken,"
          f" mean stop time {fmt_time(int(stats.mean_stop_ns()))}")

    # --- power failure ---------------------------------------------------
    lost_writes = nvme.crash()
    print(f"[{kernel.hostname}] CRASH (tore {lost_writes} in-flight writes)")

    # --- reboot: a new kernel knows nothing but the device ----------------
    kernel2 = Kernel(hostname="aurora0-rebooted", memory_bytes=8 * GIB,
                     clock=kernel.clock)
    sls2 = SLS(kernel2)
    store = ObjectStore(nvme, mem=kernel2.mem)
    report = store.recover()
    print(f"[{kernel2.hostname}] recovered {report.snapshots_recovered}"
          f" checkpoints from NVMe")
    snapshot = store.snapshots()[-1]
    image = load_image_from_store(store, snapshot)
    procs, metrics = sls2.restore(image, backend_name="disk0", store=store)

    # --- the app continues, oblivious to the interruption ------------------
    revived = Syscalls(kernel2, procs[0])
    state = revived.peek(heap.start, 10).decode()
    print(f"[{kernel2.hostname}] app pid {procs[0].pid} resumed in"
          f" {fmt_time(metrics.total_ns)}, state: {state}")
    assert state == "count=0005"
    revived.poke(heap.start, b"count=0006")
    print(f"[{kernel2.hostname}] and keeps running:"
          f" {revived.peek(heap.start, 10).decode()}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
