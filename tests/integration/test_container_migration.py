"""Integration: migrating a whole container with shared memory intact.

The hardest compatibility case the paper claims (Firefox-class apps):
a container of processes sharing memory and sockets, live-migrated to
another machine, must keep *sharing* — not just bytes — on the target.
"""

import pytest

from repro.apps.browser import BrowserApp
from repro.core.backends import make_disk_backend
from repro.core.orchestrator import SLS
from repro.core.remote import MigrationReceiver, live_migrate
from repro.hw.netdev import NetworkLink
from repro.hw.nvme import NvmeDevice
from repro.objstore.store import ObjectStore
from repro.posix.kernel import Kernel
from repro.posix.syscalls import Syscalls
from repro.units import GIB


@pytest.fixture
def hosts():
    src = Kernel(hostname="src", memory_bytes=8 * GIB)
    dst = Kernel(hostname="dst", memory_bytes=8 * GIB, clock=src.clock)
    src_sls, dst_sls = SLS(src), SLS(dst)
    link = NetworkLink(src.clock)
    src_ep, dst_ep = link.attach("src"), link.attach("dst")
    receiver = MigrationReceiver(
        dst_sls, ObjectStore(NvmeDevice(src.clock, name="dst-nvme"),
                             mem=dst.mem), dst_ep,
    )
    return src, dst, src_sls, dst_sls, src_ep, receiver


def test_container_with_shared_memory_migrates(hosts):
    src, dst, src_sls, dst_sls, src_ep, receiver = hosts
    box = src.create_container("browser-box")
    browser = BrowserApp(src, content_processes=2, container=box)
    browser.render_frame(41)
    group = src_sls.persist(box, name="browser-box")
    group.attach(make_disk_backend(src, NvmeDevice(src.clock)))

    restored, report = live_migrate(
        src_sls, group, receiver, src_ep, "dst", rounds=2
    )
    assert len(restored) == 3  # chrome + 2 content processes

    # Identify the chrome process (parent of the others).
    by_pid = {p.pid: p for p in restored}
    chrome = next(p for p in restored if p.parent not in by_pid.values())
    content = [p for p in restored if p is not chrome]

    # Shared memory is still ONE object on the target.
    segs = {id(next(iter(p.shm_attachments.values()))) for p in restored}
    assert len(segs) == 1

    # And still coherent: chrome writes, every content process reads.
    Syscalls(dst, chrome).poke(browser.shm_addr, b"frame:42")
    for proc in content:
        got = Syscalls(dst, proc).peek(browser.shm_addr, 8)
        assert got == b"frame:42"

    # IPC socketpairs migrated connected: round-trip a message.
    chrome_sys = Syscalls(dst, chrome)
    parent_fd, child_fd = browser._ipc_fds[0]
    chrome_sys.write(parent_fd, b"post-migration-ping")
    child_sys = Syscalls(dst, content[0])
    assert child_sys.read(child_fd, 19) == b"post-migration-ping"

    # Source incarnation is gone.
    assert not src.containers[box.cid].member_pids


def test_migrated_container_can_checkpoint_on_target(hosts):
    src, dst, src_sls, dst_sls, src_ep, receiver = hosts
    box = src.create_container("appbox")
    browser = BrowserApp(src, content_processes=1, container=box)
    group = src_sls.persist(box, name="appbox")
    group.attach(make_disk_backend(src, NvmeDevice(src.clock)))
    restored, _ = live_migrate(
        src_sls, group, receiver, src_ep, "dst", rounds=2
    )
    # Re-persist on the target and keep checkpointing there.
    chrome = restored[0]
    new_group = dst_sls.persist(chrome, name="appbox-on-dst")
    new_group.attach(make_disk_backend(dst, NvmeDevice(dst.clock, name="dst2")))
    image = dst_sls.checkpoint(new_group)
    dst_sls.barrier(new_group)
    assert image.durable
    procs, _ = dst_sls.restore(image, new_instance=True, name_suffix="-x")
    assert len(procs) == len(restored)
