"""Property: ANY application state survives checkpoint → restore.

Hypothesis drives a random sequence of state-building operations
(memory writes across regions, file writes/seeks, pipe traffic, shm
pokes, message sends, signal state), checkpoints the process tree to
disk, restores it into a *fresh kernel*, and verifies the observable
state is identical.  This is the SLS contract in one test.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.backends import make_disk_backend
from repro.core.orchestrator import SLS
from repro.core.restore import load_image_from_store
from repro.hw.nvme import NvmeDevice
from repro.objstore.store import ObjectStore
from repro.posix.fd import O_CREAT, O_RDWR
from repro.posix.kernel import Kernel
from repro.posix.signals import SIGUSR1
from repro.posix.syscalls import Syscalls
from repro.units import GIB, PAGE_SIZE

N_PAGES = 6

op_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("mem"), st.integers(0, N_PAGES - 1),
                  st.binary(min_size=1, max_size=24)),
        st.tuples(st.just("file"), st.integers(0, 400),
                  st.binary(min_size=1, max_size=24)),
        st.tuples(st.just("pipe"), st.binary(min_size=1, max_size=16)),
        st.tuples(st.just("shm"), st.binary(min_size=1, max_size=16)),
        st.tuples(st.just("msg"), st.integers(1, 3),
                  st.binary(min_size=1, max_size=16)),
        st.tuples(st.just("signal")),
        st.tuples(st.just("seek"), st.integers(0, 400)),
    ),
    max_size=25,
)


def build_state(ops):
    kernel = Kernel(memory_bytes=2 * GIB)
    sls = SLS(kernel)
    proc = kernel.spawn("subject")
    sys = Syscalls(kernel, proc)
    heap = sys.mmap(N_PAGES * PAGE_SIZE, name="heap")
    fd = sys.open("/state-file", O_RDWR | O_CREAT)
    pipe_r, pipe_w = sys.pipe()
    seg = sys.shmget(0x5EED, 2 * PAGE_SIZE)
    shm_addr = sys.shmat(seg)
    pipe_bytes = bytearray()
    for op in ops:
        if op[0] == "mem":
            _, page, data = op
            sys.poke(heap.start + page * PAGE_SIZE, data)
        elif op[0] == "file":
            _, offset, data = op
            sys.lseek(fd, offset)
            sys.write(fd, data)
        elif op[0] == "pipe":
            if len(pipe_bytes) + len(op[1]) < 60_000:
                sys.write(pipe_w, op[1])
                pipe_bytes += op[1]
        elif op[0] == "shm":
            sys.poke(shm_addr, op[1])
        elif op[0] == "msg":
            _, mtype, body = op
            try:
                sys.msgsnd(9, mtype, body)
            except Exception:
                pass
        elif op[0] == "signal":
            proc.signals.send(SIGUSR1)
        elif op[0] == "seek":
            sys.lseek(fd, op[1])
    return kernel, sls, proc, sys, heap, fd, (pipe_r, pipe_w), shm_addr


def observe(kernel, proc, heap, fd, pipe_fds, shm_addr):
    """Everything externally observable about the process state."""
    sys = Syscalls(kernel, proc)
    memory = [
        sys.peek(heap.start + i * PAGE_SIZE, 32) for i in range(N_PAGES)
    ]
    file = sys.fstat_file(fd)
    offset = file.offset
    sys.lseek(fd, 0)
    content = sys.read(fd, 1024)
    sys.lseek(fd, offset)
    shm = sys.peek(shm_addr, 32)
    queue = kernel.msgqueues.msgget(9)
    messages = [(m.mtype, m.body) for m in queue.messages]
    return {
        "memory": memory,
        "file_offset": offset,
        "file_content": content,
        "shm": shm,
        "messages": messages,
        "pending": sorted(proc.signals.pending),
        "cwd": proc.cwd,
    }


def drain_pipe(kernel, proc, pipe_r):
    sys = Syscalls(kernel, proc)
    out = bytearray()
    from repro.errors import WouldBlock

    while True:
        try:
            chunk = sys.read(pipe_r, 4096)
        except WouldBlock:
            break
        if not chunk:
            break
        out += chunk
    return bytes(out)


@settings(max_examples=25, deadline=None)
@given(ops=op_strategy)
def test_state_survives_checkpoint_restore(ops):
    kernel, sls, proc, sys, heap, fd, pipe_fds, shm_addr = build_state(ops)
    device = NvmeDevice(kernel.clock)
    group = sls.persist(proc, name="subject")
    group.attach(make_disk_backend(kernel, device))
    sls.checkpoint(group)
    sls.barrier(group)

    before = observe(kernel, proc, heap, fd, pipe_fds, shm_addr)
    pipe_before = drain_pipe(kernel, proc, pipe_fds[0])

    # Fresh machine, recovered store, lineage-rebuilt image.
    kernel2 = Kernel(memory_bytes=2 * GIB, clock=kernel.clock)
    sls2 = SLS(kernel2)
    store = ObjectStore(device, mem=kernel2.mem)
    store.recover()
    image = load_image_from_store(store, store.snapshots()[-1])
    procs, _ = sls2.restore(image, backend_name="disk0", store=store)
    revived = procs[0]

    after = observe(kernel2, revived, heap, fd, pipe_fds, shm_addr)
    assert after == before
    assert drain_pipe(kernel2, revived, pipe_fds[0]) == pipe_before
