"""Integration: the headline SLS flow — run, crash, reboot, resume.

"After a crash, the SLS restores the application, including all state
(i.e., CPU registers, OS state, and memory), which continues executing
oblivious to the interruption."

Nothing from the pre-crash session survives except the device: the
reboot path recovers the store from disk, rebuilds the checkpoint
image from the snapshot lineage, and restores it on a fresh kernel.
"""

import pytest

from repro.core.backends import make_disk_backend
from repro.core.orchestrator import SLS
from repro.core.restore import load_image_from_store
from repro.hw.nvme import NvmeDevice
from repro.objstore.store import ObjectStore
from repro.posix.fd import O_CREAT, O_RDWR
from repro.posix.kernel import Kernel
from repro.posix.syscalls import Syscalls
from repro.units import GIB, KIB, PAGE_SIZE


def boot_and_run():
    """Boot a machine, run an app with rich state, checkpoint it."""
    kernel = Kernel(memory_bytes=4 * GIB)
    sls = SLS(kernel)
    device = NvmeDevice(kernel.clock, name="persist-nvme")
    proc = kernel.spawn("stateful-app")
    sys = Syscalls(kernel, proc)
    heap = sys.mmap(256 * KIB, name="heap")
    sys.populate(heap.start, 256 * KIB, fill_fn=lambda i: b"heap-%d" % i)
    proc.main_thread.cpu.rip = 0x402000
    proc.main_thread.cpu.gp["rbx"] = 0x1234
    fd = sys.open("/journal", O_RDWR | O_CREAT)
    sys.write(fd, b"journal-entry-1\n")
    r, w = sys.pipe()
    sys.write(w, b"in-flight")
    sys.msgsnd(3, 1, b"queued")
    group = sls.persist(proc, name="stateful-app")
    group.attach(make_disk_backend(kernel, device))
    image = sls.checkpoint(group)
    sls.barrier(group)
    return kernel, sls, device, proc, heap, fd, r, group


def reboot_and_restore(old_kernel, device, snapshot_name=None):
    """A fresh kernel recovers the store and restores the newest image."""
    kernel = Kernel(hostname="rebooted", memory_bytes=4 * GIB,
                    clock=old_kernel.clock)
    sls = SLS(kernel)
    store = ObjectStore(device, mem=kernel.mem)
    report = store.recover()
    snapshots = store.snapshots()
    assert snapshots, "no restorable checkpoint on the device"
    snapshot = (
        store.snapshot_by_name(snapshot_name) if snapshot_name
        else snapshots[-1]
    )
    image = load_image_from_store(store, snapshot)
    procs, metrics = sls.restore(
        image, backend_name="disk0", store=store
    )
    return kernel, sls, procs, metrics, report


class TestCrashRebootResume:
    def test_full_cycle(self):
        kernel, sls, device, proc, heap, fd, pipe_r, group = boot_and_run()
        original_rip = proc.main_thread.cpu.rip

        device.crash()  # power failure

        kernel2, sls2, procs, metrics, report = reboot_and_restore(
            kernel, device
        )
        assert report.snapshots_recovered == 1
        revived = procs[0]
        rsys = Syscalls(kernel2, revived)
        # CPU registers, memory, files, pipes, queues — all back.
        assert revived.main_thread.cpu.rip == original_rip
        assert revived.main_thread.cpu.gp["rbx"] == 0x1234
        assert rsys.peek(heap.start + 3 * PAGE_SIZE, 6) == b"heap-3"
        rsys.lseek(fd, 0)
        assert rsys.read(fd, 16) == b"journal-entry-1\n"
        assert rsys.read(pipe_r, 9) == b"in-flight"
        assert rsys.msgrcv(3).body == b"queued"
        # And it continues executing.
        rsys.poke(heap.start, b"post-crash-write")
        assert rsys.peek(heap.start, 16) == b"post-crash-write"

    def test_incremental_chain_restores_after_reboot(self):
        kernel, sls, device, proc, heap, fd, pipe_r, group = boot_and_run()
        sys = Syscalls(kernel, proc)
        # Two more incremental checkpoints mutate different pages.
        sys.poke(heap.start, b"gen-1")
        sls.checkpoint(group)
        sys.poke(heap.start + 5 * PAGE_SIZE, b"gen-2")
        sls.checkpoint(group)
        sls.barrier(group)
        device.crash()

        kernel2, _sls2, procs, _m, _r = reboot_and_restore(kernel, device)
        rsys = Syscalls(kernel2, procs[0])
        # The overlay: newest deltas win, untouched pages from the base.
        assert rsys.peek(heap.start, 5) == b"gen-1"
        assert rsys.peek(heap.start + 5 * PAGE_SIZE, 5) == b"gen-2"
        assert rsys.peek(heap.start + 9 * PAGE_SIZE, 6) == b"heap-9"

    def test_torn_final_checkpoint_falls_back(self):
        kernel, sls, device, proc, heap, fd, pipe_r, group = boot_and_run()
        sys = Syscalls(kernel, proc)
        sys.poke(heap.start, b"SHOULD-NOT-SURVIVE")
        sls.checkpoint(group)  # not flushed
        device.crash()         # tears it

        kernel2, _sls2, procs, _m, report = reboot_and_restore(kernel, device)
        # The torn checkpoint is gone as a unit — either its superblock
        # never landed (previous generation wins) or its records failed
        # verification (explicit discard).  Only the durable one remains.
        assert report.snapshots_recovered == 1
        rsys = Syscalls(kernel2, procs[0])
        assert rsys.peek(heap.start, 6) == b"heap-0"

    def test_restore_to_named_older_checkpoint(self):
        kernel, sls, device, proc, heap, fd, pipe_r, group = boot_and_run()
        sys = Syscalls(kernel, proc)
        sys.poke(heap.start, b"v2")
        sls.checkpoint(group, name="named-v2")
        sys.poke(heap.start, b"v3")
        sls.checkpoint(group, name="named-v3")
        sls.barrier(group)
        device.crash()

        kernel2, _s, procs, _m, _r = reboot_and_restore(
            kernel, device, snapshot_name="named-v2"
        )
        assert Syscalls(kernel2, procs[0]).peek(heap.start, 2) == b"v2"
