"""Integration: failure injection and swap/checkpoint interplay."""

import pytest

from repro.core.backends import MemoryBackend, make_disk_backend
from repro.core.orchestrator import SLS
from repro.core.restore import load_image_from_store
from repro.errors import CheckpointError
from repro.hw.nvme import NvmeDevice
from repro.posix.kernel import Kernel
from repro.posix.syscalls import Syscalls
from repro.units import GIB, MIB, PAGE_SIZE


@pytest.fixture
def kernel():
    return Kernel(memory_bytes=4 * GIB)


@pytest.fixture
def sls(kernel):
    return SLS(kernel)


class TestBackendFailure:
    def _world(self, kernel, sls):
        proc = kernel.spawn("app")
        sys = Syscalls(kernel, proc)
        entry = sys.mmap(64 * PAGE_SIZE, name="heap")
        sys.populate(entry.start, 64 * PAGE_SIZE, fill_fn=lambda i: b"p%d" % i)
        group = sls.persist(proc, name="app")
        return proc, sys, entry, group

    def test_all_backends_failing_raises(self, kernel, sls):
        proc, sys, entry, group = self._world(kernel, sls)
        device = NvmeDevice(kernel.clock)
        backend = make_disk_backend(kernel, device)
        group.attach(backend)
        device.inject_failures(100)
        frames_before = kernel.phys.allocated_frames
        with pytest.raises(CheckpointError):
            sls.checkpoint(group)
        # No leaked checkpoint frame references.
        assert kernel.phys.allocated_frames == frames_before
        # The application is resumed, not wedged.
        assert proc.is_alive()
        sys.poke(entry.start, b"still-writable")

    def test_partial_failure_keeps_healthy_backend(self, kernel, sls):
        proc, sys, entry, group = self._world(kernel, sls)
        bad_device = NvmeDevice(kernel.clock, name="bad")
        group.attach(make_disk_backend(kernel, bad_device, name="bad-disk"))
        group.attach(MemoryBackend("memory"))
        bad_device.inject_failures(100)
        image = sls.checkpoint(group)
        assert image.failed_backends == ["bad-disk"]
        # Durable on the surviving backend alone.
        sls.barrier(group)
        assert image.durable
        assert image.durable_on == {"memory"}
        # And restorable from it.
        procs, _ = sls.restore(image, backend_name="memory",
                               new_instance=True, name_suffix="-r")
        got = Syscalls(kernel, procs[0]).peek(entry.start + PAGE_SIZE, 2)
        assert got == b"p1"

    def test_next_checkpoint_succeeds_after_transient_failure(self, kernel, sls):
        proc, sys, entry, group = self._world(kernel, sls)
        device = NvmeDevice(kernel.clock)
        group.attach(make_disk_backend(kernel, device))
        device.inject_failures(1)
        with pytest.raises(CheckpointError):
            sls.checkpoint(group)
        image = sls.checkpoint(group)  # device healthy again
        sls.barrier(group)
        assert image.durable


class TestSwapCheckpointInterplay:
    def test_swapped_pages_join_the_checkpoint(self, kernel, sls):
        """Paper §3: 'When pages are swapped out due to memory pressure
        they are incorporated into the subsequent checkpoint.'"""
        proc = kernel.spawn("app")
        sys = Syscalls(kernel, proc)
        entry = sys.mmap(16 * PAGE_SIZE, name="heap")
        sys.populate(entry.start, 16 * PAGE_SIZE, fill_fn=lambda i: b"v-%d" % i)
        group = sls.persist(proc, name="app")
        device = NvmeDevice(kernel.clock, name="store-dev")
        group.attach(make_disk_backend(kernel, device))
        # Evict a few pages to swap before the checkpoint.
        for pindex in (2, 5, 9):
            kernel.swap.page_out(entry.obj, pindex)
        assert entry.obj.resident_page(5) is None
        image = sls.checkpoint(group)
        sls.barrier(group)
        # The image covers the swapped pages without faulting them in.
        assert entry.obj.resident_page(5) is None
        refs = image.page_refs["disk0"][entry.obj.oid]
        assert {2, 5, 9} <= set(refs)
        # Restore sees their content.
        procs, _ = sls.restore(image, backend_name="disk0",
                               new_instance=True, name_suffix="-r")
        got = Syscalls(kernel, procs[0]).peek(
            entry.start + 5 * PAGE_SIZE, 3
        )
        assert got == b"v-5"

    def test_object_with_only_swapped_dirty_pages(self, kernel, sls):
        """Even when every dirty page of an interval was evicted, the
        incremental checkpoint still captures it from swap."""
        proc = kernel.spawn("app")
        sys = Syscalls(kernel, proc)
        entry = sys.mmap(8 * PAGE_SIZE, name="heap")
        sys.populate(entry.start, 8 * PAGE_SIZE, fill=b"base")
        group = sls.persist(proc, name="app")
        group.attach(make_disk_backend(kernel, NvmeDevice(kernel.clock)))
        sls.checkpoint(group)
        sys.poke(entry.start + 3 * PAGE_SIZE, b"dirty-then-evicted")
        kernel.swap.page_out(entry.obj, 3)
        image = sls.checkpoint(group)
        sls.barrier(group)
        procs, _ = sls.restore(image, backend_name="disk0",
                               new_instance=True, name_suffix="-r")
        got = Syscalls(kernel, procs[0]).peek(
            entry.start + 3 * PAGE_SIZE, 18
        )
        assert got == b"dirty-then-evicted"


class TestRebootImageLoader:
    def test_load_image_from_store_unit(self, kernel, sls):
        proc = kernel.spawn("app")
        sys = Syscalls(kernel, proc)
        entry = sys.mmap(8 * PAGE_SIZE, name="heap")
        sys.populate(entry.start, 8 * PAGE_SIZE, fill_fn=lambda i: b"x%d" % i)
        group = sls.persist(proc, name="app")
        backend = make_disk_backend(kernel, NvmeDevice(kernel.clock))
        group.attach(backend)
        sls.checkpoint(group)
        sys.poke(entry.start, b"delta")
        image = sls.checkpoint(group)
        sls.barrier(group)
        store = backend.store
        rebuilt = load_image_from_store(
            store, store.snapshot_by_name(image.name)
        )
        # The rebuilt page map matches the in-memory one.
        live = image.page_refs["disk0"]
        assert set(rebuilt.page_refs["disk0"]) == set(live)
        for oid in live:
            assert set(rebuilt.page_refs["disk0"][oid]) == set(live[oid])
        # And the metadata parses to the same process set.
        assert rebuilt.meta["procs"][0]["pid"] == proc.pid
