"""Every shipped example must run clean end-to-end."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [str(script)])
    try:
        runpy.run_path(str(script), run_name="__main__")
    except SystemExit as exc:
        assert exc.code in (0, None), f"{script.name} exited {exc.code}"
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"
