"""Registry: typed instruments, label identity, kind collisions."""

from __future__ import annotations

import pytest

from repro.obs.registry import Counter, Gauge, Histogram, ObsError, Registry


class TestCounters:
    def test_get_or_create_is_identity(self):
        reg = Registry()
        a = reg.counter("x_total", group="g")
        b = reg.counter("x_total", group="g")
        assert a is b
        a.inc(3)
        assert b.value == 3

    def test_labels_partition_series(self):
        reg = Registry()
        reg.counter("x_total", group="a").inc(1)
        reg.counter("x_total", group="b").inc(2)
        assert reg.get("x_total", group="a").value == 1
        assert reg.get("x_total", group="b").value == 2

    def test_negative_increment_rejected(self):
        reg = Registry()
        with pytest.raises(ObsError):
            reg.counter("x_total").inc(-1)


class TestGauges:
    def test_set_add_and_ratchet(self):
        reg = Registry()
        g = reg.gauge("depth")
        g.set(5)
        g.add(-2)
        assert g.value == 3
        g.set_max(10)
        g.set_max(7)  # lower values do not regress the ratchet
        assert g.value == 10


class TestHistograms:
    def test_observe_and_summary_stats(self):
        reg = Registry()
        h = reg.histogram("lat_ns")
        for v in (500, 5_000, 50_000):
            h.observe(v)
        assert h.count == 3
        assert h.total == 55_500
        assert h.min == 500
        assert h.max == 50_000
        assert h.mean == pytest.approx(18_500)

    def test_quantile_returns_bucket_bound(self):
        reg = Registry()
        h = reg.histogram("lat_ns", buckets=(10, 100, 1000))
        for v in (5, 5, 5, 500):
            h.observe(v)
        assert h.quantile(0.5) == 10
        assert h.quantile(1.0) == 1000

    def test_empty_quantile_is_none(self):
        reg = Registry()
        assert reg.histogram("lat_ns").quantile(0.5) is None


class TestRegistry:
    def test_kind_collision_rejected(self):
        reg = Registry()
        reg.counter("x")
        with pytest.raises(ObsError):
            reg.gauge("x")
        with pytest.raises(ObsError):
            reg.histogram("x")

    def test_collect_is_sorted_and_typed(self):
        reg = Registry()
        reg.gauge("g")
        reg.counter("c", a="2")
        reg.counter("c", a="1")
        reg.histogram("h")
        collected = reg.collect()
        assert [type(i) for i in collected] == [Counter, Counter, Gauge, Histogram]
        assert [i.label_str for i in collected[:2]] == ['{a=1}', '{a=2}']

    def test_snapshot_is_plain_data(self):
        reg = Registry()
        reg.counter("c").inc(4)
        reg.histogram("h").observe(10)
        snap = reg.snapshot()
        assert snap["counters"] == [{"name": "c", "labels": {}, "value": 4}]
        assert snap["histograms"][0]["count"] == 1
        assert snap["histograms"][0]["total"] == 10
