"""JSONL export: schema and round-trip fidelity."""

from __future__ import annotations

import io
import json

from repro.obs.export import (
    dump_jsonl,
    dumps_jsonl,
    load_jsonl,
    spans_from_records,
    trace_records,
)
from repro.obs.tracer import Tracer
from repro.sim.clock import SimClock


def traced_run():
    """A small two-root trace with events at both scopes."""
    clock = SimClock()
    tracer = Tracer(clock, enabled=True)
    with tracer.span("sls.checkpoint", group="g0", incremental=False):
        clock.advance(100)
        with tracer.span("checkpoint.stop"):
            clock.advance(40)
            tracer.event("cow.freeze", pages=3)
            clock.advance(10)
    tracer.event("orphan.marker", n=1)  # span-less tracepoint
    clock.advance(5)
    with tracer.span("sls.restore", backend="disk0"):
        clock.advance(7)
    return tracer


class TestRecords:
    def test_span_record_schema(self):
        records = trace_records(traced_run())
        spans = [r for r in records if r["type"] == "span"]
        events = [r for r in records if r["type"] == "event"]
        assert [s["name"] for s in spans] == [
            "sls.checkpoint", "checkpoint.stop", "sls.restore",
        ]
        root = spans[0]
        assert root["parent"] is None
        assert root["attrs"] == {"group": "g0", "incremental": False}
        assert spans[1]["parent"] == root["id"]
        # The scoped event is inlined; only the orphan stays top-level.
        assert spans[1]["events"][0]["name"] == "cow.freeze"
        assert [e["name"] for e in events] == ["orphan.marker"]

    def test_jsonl_is_one_json_object_per_line(self):
        text = dumps_jsonl(traced_run())
        lines = text.strip().splitlines()
        assert len(lines) == 4
        for line in lines:
            assert isinstance(json.loads(line), dict)

    def test_dump_reports_line_count(self):
        buffer = io.StringIO()
        assert dump_jsonl(traced_run(), buffer) == 4


class TestRoundTrip:
    def test_spans_rebuild_identically(self):
        tracer = traced_run()
        originals = tracer.roots()
        rebuilt = spans_from_records(load_jsonl(dumps_jsonl(tracer)))
        assert len(rebuilt) == len(originals) == 2

        def shape(span):
            return (
                span.name,
                span.start_ns,
                span.end_ns,
                span.duration_ns,
                dict(span.attrs),
                [(e.name, e.t_ns, dict(e.attrs)) for e in span.events],
                [shape(c) for c in span.children],
            )

        for original, copy in zip(originals, rebuilt):
            assert shape(copy) == shape(original)

    def test_round_trip_through_a_file_object(self):
        tracer = traced_run()
        buffer = io.StringIO()
        dump_jsonl(tracer, buffer)
        buffer.seek(0)
        rebuilt = spans_from_records(load_jsonl(buffer))
        assert [s.name for s in rebuilt] == ["sls.checkpoint", "sls.restore"]
        stop = rebuilt[0].children[0]
        assert stop.duration_ns == 50
        assert stop.events[0].attrs == {"pages": 3}
