"""End-to-end observability: the SLS pipeline under the tracer.

The load-bearing properties: derived Table 3/4 metrics agree with the
span tree they come from, counters live in kernel state (restores
never reset them), a disabled tracer retains nothing, and tracing
changes no virtual-time measurement.
"""

from __future__ import annotations

from repro.core.backends import make_disk_backend
from repro.core.metrics import CheckpointMetrics
from repro.hw.nvme import NvmeDevice
from repro.obs import names
from repro.posix.kernel import Kernel
from repro.posix.syscalls import Syscalls
from repro.units import GIB, KIB


def boot_app(traced: bool):
    """One machine + one populated app, persisted to an NVMe backend."""
    from repro.core.orchestrator import SLS

    kernel = Kernel(memory_bytes=4 * GIB)
    if traced:
        kernel.obs.enable()
    sls = SLS(kernel)
    proc = kernel.spawn("app")
    sys = Syscalls(kernel, proc)
    entry = sys.mmap(128 * KIB, name="heap")
    sys.populate(entry.start, 128 * KIB, fill_fn=lambda i: b"page-%d" % i)
    group = sls.persist(proc, name="app")
    group.attach(make_disk_backend(kernel, NvmeDevice(kernel.clock)))
    return kernel, sls, group, proc, entry


class TestSpanMetricsAgreement:
    def test_checkpoint_metrics_match_the_span_tree(self):
        kernel, sls, group, proc, entry = boot_app(traced=True)
        image = sls.checkpoint(group)

        roots = kernel.obs.tracer.find_roots(names.SPAN_CHECKPOINT)
        assert len(roots) == 1
        derived = CheckpointMetrics.from_span(roots[0])
        m = image.metrics
        assert derived.metadata_copy_ns == m.metadata_copy_ns
        assert derived.data_copy_ns == m.data_copy_ns
        assert derived.stop_time_ns == m.stop_time_ns
        assert derived.pages_captured == m.pages_captured == 32
        assert derived.objects_serialized == m.objects_serialized

    def test_stop_phases_sum_within_the_stop_span(self):
        kernel, sls, group, proc, entry = boot_app(traced=True)
        sls.checkpoint(group)
        (root,) = kernel.obs.tracer.find_roots(names.SPAN_CHECKPOINT)
        stop = root.child(names.SPAN_CKPT_STOP)
        meta = stop.child(names.SPAN_CKPT_STOP_METADATA)
        arm = stop.child(names.SPAN_CKPT_STOP_COW_ARM)
        assert 0 < meta.duration_ns + arm.duration_ns <= stop.duration_ns
        assert stop.duration_ns <= root.duration_ns

    def test_restore_metrics_match_the_span_tree(self):
        kernel, sls, group, proc, entry = boot_app(traced=True)
        image = sls.checkpoint(group)
        sls.barrier(group)
        procs, metrics = sls.restore(
            image, new_instance=True, name_suffix="-restored"
        )
        (root,) = kernel.obs.tracer.find_roots(names.SPAN_RESTORE)
        assert root.child(names.SPAN_RESTORE_READ).duration_ns \
            == metrics.objstore_read_ns
        assert root.child(names.SPAN_RESTORE_METADATA).duration_ns \
            == metrics.metadata_ns
        assert root.child(names.SPAN_RESTORE_MEMORY).duration_ns \
            == metrics.memory_ns
        assert metrics.pages_installed == 32

    def test_barrier_records_backend_durability(self):
        kernel, sls, group, proc, entry = boot_app(traced=True)
        sls.checkpoint(group)
        sls.barrier(group)
        (barrier,) = kernel.obs.tracer.find_roots(names.SPAN_BARRIER)
        durable = [
            e for e in barrier.events if e.name == names.EV_BACKEND_DURABLE
        ]
        assert [e.attrs["backend"] for e in durable] == ["disk0"]
        lag = kernel.obs.registry.get(names.H_FLUSH_LAG, backend="disk0")
        assert lag is not None and lag.count == 1
        assert lag.max == durable[0].attrs["lag_ns"]


class TestCountersAreKernelState:
    def test_counters_survive_checkpoint_and_restore(self):
        """Restoring an app must not reset its host's statistics —
        instruments are kernel state, not part of any process image."""
        kernel, sls, group, proc, entry = boot_app(traced=True)
        sls.checkpoint(group)
        sls.checkpoint(group)
        sls.barrier(group)
        reg = kernel.obs.registry
        ckpts = reg.get(names.C_CHECKPOINTS, group="app")
        pages = reg.get(names.C_PAGES_CAPTURED, group="app")
        assert ckpts.value == 2
        pages_before = pages.value

        sls.restore(group.latest_image, new_instance=True, name_suffix="-r")

        assert ckpts.value == 2  # unchanged by the restore
        assert pages.value == pages_before
        assert reg.get(
            names.C_RESTORES, group="app", backend="disk0"
        ).value == 1
        # ... and the next checkpoint keeps accumulating on top.
        sls.checkpoint(group)
        assert ckpts.value == 3

    def test_store_counters_accumulate_across_checkpoints(self):
        kernel, sls, group, proc, entry = boot_app(traced=True)
        sls.checkpoint(group)
        written = kernel.obs.registry.get(
            names.C_STORE_PAGES_WRITTEN, store="nvme0"
        )
        first = written.value
        assert first == 32
        # Dirty one page; the incremental captures it, dedup catches
        # nothing new beyond that page.
        sys = Syscalls(kernel, proc)
        sys.poke(entry.start, b"dirtied")
        sls.checkpoint(group)
        assert kernel.obs.registry.get(
            names.C_COW_FAULTS
        ).value >= 1
        assert written.value >= first


class TestDisabledFastPath:
    def test_disabled_tracer_retains_nothing_end_to_end(self):
        kernel, sls, group, proc, entry = boot_app(traced=False)
        image = sls.checkpoint(group)
        sls.barrier(group)
        sls.restore(image, new_instance=True, name_suffix="-r")
        tracer = kernel.obs.tracer
        assert tracer.roots() == []
        assert len(tracer.events) == 0
        # Derived metrics still work — spans measure even when dropped.
        assert image.metrics.stop_time_ns > 0

    def test_tracing_changes_no_virtual_time_measurement(self):
        """The determinism contract behind the benchmarks: identical
        runs traced and untraced produce identical virtual timings."""

        def run(traced):
            kernel, sls, group, proc, entry = boot_app(traced=traced)
            image = sls.checkpoint(group)
            durable_at = sls.barrier(group)
            sys = Syscalls(kernel, proc)
            sys.poke(entry.start, b"dirty")
            second = sls.checkpoint(group)
            return (
                image.metrics.stop_time_ns,
                image.metrics.metadata_copy_ns,
                image.metrics.data_copy_ns,
                durable_at,
                second.metrics.stop_time_ns,
                kernel.clock.now,
            )

        assert run(traced=True) == run(traced=False)
