"""OBSERVABILITY.md must document every shipped name.

The catalogue in ``repro.obs.names`` is the single source of truth;
this test pins the docs to it so neither can drift.
"""

from __future__ import annotations

from pathlib import Path

from repro.obs import names

DOC = Path(__file__).resolve().parent.parent.parent / "OBSERVABILITY.md"


def test_every_name_is_documented():
    text = DOC.read_text()
    missing = [
        f"{kind}: {name}"
        for kind, values in names.catalogue().items()
        for name in values
        if name not in text
    ]
    assert not missing, (
        "names shipped in repro.obs.names but absent from OBSERVABILITY.md:\n"
        + "\n".join(missing)
    )


def test_catalogue_covers_all_kinds():
    groups = names.catalogue()
    assert set(groups) == {"span", "event", "counter", "gauge", "histogram"}
    assert all(groups[kind] for kind in groups)
