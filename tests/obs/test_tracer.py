"""Tracer: nested spans on the simulated clock, zero cost, no drift."""

from __future__ import annotations

from repro.obs import names
from repro.obs.tracer import Tracer
from repro.sim.clock import SimClock


def make_tracer(enabled=True):
    clock = SimClock()
    return clock, Tracer(clock, enabled=enabled)


class TestSpanNesting:
    def test_durations_track_virtual_time(self):
        clock, tracer = make_tracer()
        with tracer.span("outer") as outer:
            clock.advance(100)
            with tracer.span("inner") as inner:
                clock.advance(250)
            clock.advance(50)
        assert inner.duration_ns == 250
        assert outer.duration_ns == 400
        assert inner.parent is outer
        assert outer.children == [inner]

    def test_tracing_never_advances_the_clock(self):
        clock, tracer = make_tracer()
        before = clock.now
        with tracer.span("a", k=1):
            with tracer.span("b"):
                tracer.event("tick", n=3)
        assert clock.now == before

    def test_only_roots_are_retained(self):
        clock, tracer = make_tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        roots = tracer.roots()
        assert [s.name for s in roots] == ["outer"]
        assert [s.name for s in roots[0].children] == ["inner"]

    def test_current_tracks_the_open_stack(self):
        clock, tracer = make_tracer()
        assert tracer.current() is None
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None

    def test_events_attach_to_the_open_span(self):
        clock, tracer = make_tracer()
        with tracer.span("outer") as outer:
            clock.advance(10)
            tracer.event("marker", value=7)
        assert [e.name for e in outer.events] == ["marker"]
        assert outer.events[0].t_ns == outer.start_ns + 10
        assert outer.events[0].attrs["value"] == 7

    def test_close_at_supports_async_completions(self):
        clock, tracer = make_tracer()
        span = tracer.span("flush")
        clock.advance(5)
        span.close(at_ns=clock.now + 1000)  # scheduled virtual deadline
        assert span.duration_ns == 1005

    def test_walk_visits_the_whole_subtree(self):
        clock, tracer = make_tracer()
        with tracer.span("a") as a:
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                with tracer.span("d"):
                    pass
        assert [s.name for s in a.walk()] == ["a", "b", "c", "d"]

    def test_find_roots_filters_by_name(self):
        clock, tracer = make_tracer()
        with tracer.span(names.SPAN_CHECKPOINT):
            pass
        with tracer.span(names.SPAN_BARRIER):
            pass
        assert len(tracer.find_roots(names.SPAN_CHECKPOINT)) == 1

    def test_capacity_bounds_retained_roots(self):
        clock, tracer = make_tracer()
        tracer.spans = type(tracer.spans)(maxlen=4)
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        assert [s.name for s in tracer.roots()] == ["s6", "s7", "s8", "s9"]


class TestDisabledFastPath:
    def test_disabled_tracer_emits_nothing(self):
        clock, tracer = make_tracer(enabled=False)
        with tracer.span("outer"):
            tracer.event("marker")
            with tracer.span("inner"):
                clock.advance(10)
        assert tracer.roots() == []
        assert len(tracer.events) == 0

    def test_disabled_spans_still_measure(self):
        # Metrics derivation reads the span tree even when the tracer
        # retains nothing, so durations must still be real.
        clock, tracer = make_tracer(enabled=False)
        with tracer.span("outer") as outer:
            clock.advance(123)
        assert outer.duration_ns == 123
        assert tracer.roots() == []

    def test_enable_disable_roundtrip(self):
        clock, tracer = make_tracer(enabled=False)
        tracer.enable()
        with tracer.span("kept"):
            pass
        tracer.disable()
        with tracer.span("dropped"):
            pass
        assert [s.name for s in tracer.roots()] == ["kept"]
