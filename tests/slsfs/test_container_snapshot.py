"""Tests for zero-copy container snapshots (process + fs state)."""

import pytest

from repro.core.backends import DiskBackend, MemoryBackend
from repro.core.orchestrator import SLS
from repro.hw.nvme import NvmeDevice
from repro.objstore.store import ObjectStore
from repro.posix.fd import O_CREAT, O_RDWR
from repro.posix.kernel import Kernel
from repro.posix.syscalls import Syscalls
from repro.slsfs.fs import SlsFS
from repro.slsfs.snapshot import clone_container, snapshot_container
from repro.units import GIB, KIB


@pytest.fixture
def kernel():
    return Kernel(memory_bytes=4 * GIB)


@pytest.fixture
def world(kernel):
    """A container whose process writes to an SLSFS-backed file."""
    sls = SLS(kernel)
    device = NvmeDevice(kernel.clock)
    store = ObjectStore(device, mem=kernel.mem)
    fs = SlsFS(store)
    kernel.vfs.mount("/sls", fs)
    box = kernel.create_container("appbox")
    proc = kernel.spawn("worker", container=box)
    sys = Syscalls(kernel, proc)
    entry = sys.mmap(64 * KIB, name="heap")
    sys.poke(entry.start, b"mem-state")
    fd = sys.open("/sls/state.db", O_RDWR | O_CREAT)
    sys.write(fd, b"file-state")
    group = sls.persist(box, name="appbox")
    group.attach(DiskBackend("disk0", store))
    group.attach(MemoryBackend("memory"))
    return sls, fs, store, box, proc, sys, entry, fd, group


class TestContainerSnapshot:
    def test_snapshot_pairs_process_and_fs(self, world):
        sls, fs, store, box, proc, sys, entry, fd, group = world
        snap = snapshot_container(sls, group, fs, name="pair-1")
        assert snap.image.group_name == "appbox"
        assert snap.fs_snapshot.name.startswith("slsfs@")
        # Both sides are in the same store's directory.
        names = {s.name for s in store.snapshots()}
        assert snap.image.name in names
        assert snap.fs_snapshot.name in names

    def test_clone_is_zero_copy(self, world, kernel):
        sls, fs, store, box, proc, sys, entry, fd, group = world
        snap = snapshot_container(sls, group, fs, name="pair-2")
        allocs_before = kernel.phys.total_allocations
        procs, _ = clone_container(sls, snap, name_suffix="-c", lazy=True)
        # Lazy + memory-image sharing: essentially no page copies.
        assert kernel.phys.total_allocations - allocs_before < 8

    def test_clone_sees_snapshot_state(self, world, kernel):
        sls, fs, store, box, proc, sys, entry, fd, group = world
        snap = snapshot_container(sls, group, fs, name="pair-3")
        sys.poke(entry.start, b"MOVED-ON")
        procs, _ = clone_container(sls, snap, name_suffix="-c2")
        csys = Syscalls(kernel, procs[0])
        assert csys.peek(entry.start, 9) == b"mem-state"
        csys.lseek(fd, 0)
        assert csys.read(fd, 10) == b"file-state"

    def test_fs_state_consistent_with_process_cut(self, world, kernel):
        sls, fs, store, box, proc, sys, entry, fd, group = world
        snap = snapshot_container(sls, group, fs, name="cut")
        # Post-snapshot file writes must not appear in the clone.
        sys.write(fd, b"+post-cut")
        procs, _ = clone_container(sls, snap, name_suffix="-c3")
        csys = Syscalls(kernel, procs[0])
        csys.lseek(fd, 0)
        # The clone's descriptor reads through the live fs; verify via
        # the recovered fs snapshot instead (durable cut semantics).
        recovered = SlsFS.recover(store, snapshot=snap.fs_snapshot)
        from repro.posix.vnode import VfsNamespace

        vfs = VfsNamespace(recovered)
        handle = vfs.open("/state.db", O_RDWR)
        assert handle.read(64) == b"file-state"
