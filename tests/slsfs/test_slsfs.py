"""Tests for the Aurora file system (SLSFS)."""

import pytest

from repro.errors import DirectoryNotEmpty, FileExists, IsADirectory, NoSuchFile
from repro.hw.nvme import NvmeDevice
from repro.objstore.store import ObjectStore
from repro.posix.fd import O_CREAT, O_RDWR, FdTable
from repro.posix.vnode import VfsNamespace, VnodeType
from repro.sim.clock import SimClock
from repro.slsfs.fs import SlsFS
from repro.units import PAGE_SIZE


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def nvme(clock):
    return NvmeDevice(clock)


@pytest.fixture
def store(nvme):
    return ObjectStore(nvme)


@pytest.fixture
def fs(store):
    return SlsFS(store)


@pytest.fixture
def vfs(fs):
    return VfsNamespace(fs)


class TestBasicOps:
    def test_create_write_read(self, vfs):
        f = vfs.open("/db", O_RDWR | O_CREAT)
        f.write(b"hello slsfs")
        f.seek(0)
        assert f.read(11) == b"hello slsfs"

    def test_directories(self, vfs):
        vfs.mkdir("/data")
        vfs.open("/data/file", O_RDWR | O_CREAT)
        assert vfs.listdir("/data") == ["file"]
        with pytest.raises(DirectoryNotEmpty):
            vfs.unlink("/data")

    def test_multi_page_file(self, vfs):
        f = vfs.open("/big", O_RDWR | O_CREAT)
        data = bytes(range(256)) * 64  # 16 KiB
        f.write(data)
        f.seek(0)
        assert f.read(len(data)) == data

    def test_overwrite_within_page(self, vfs):
        f = vfs.open("/f", O_RDWR | O_CREAT)
        f.write(b"aaaaaaaaaa")
        f.seek(3)
        f.write(b"BBB")
        f.seek(0)
        assert f.read(10) == b"aaaBBBaaaa"

    def test_write_across_page_boundary(self, vfs):
        f = vfs.open("/f", O_RDWR | O_CREAT)
        f.seek(PAGE_SIZE - 2)
        f.write(b"spanning")
        f.seek(PAGE_SIZE - 2)
        assert f.read(8) == b"spanning"

    def test_truncate_shrink_and_grow(self, vfs):
        f = vfs.open("/f", O_RDWR | O_CREAT)
        f.write(b"0123456789")
        f.vnode.fs.truncate(f.vnode, 4)
        f.seek(0)
        assert f.read(10) == b"0123"
        f.vnode.fs.truncate(f.vnode, 8)
        f.seek(0)
        assert f.read(8) == b"0123\x00\x00\x00\x00"

    def test_duplicate_create_rejected(self, vfs, fs):
        vfs.open("/f", O_RDWR | O_CREAT)
        with pytest.raises(FileExists):
            fs.create(fs.root(), "f", VnodeType.REGULAR)

    def test_hard_link(self, vfs, fs):
        f = vfs.open("/orig", O_RDWR | O_CREAT)
        f.write(b"shared")
        fs.link(fs.root(), "alias", f.vnode)
        g = vfs.open("/alias", O_RDWR)
        assert g.read(6) == b"shared"


class TestPersistence:
    def test_sync_then_crash_then_recover(self, vfs, fs, store, nvme):
        f = vfs.open("/survivor", O_RDWR | O_CREAT)
        f.write(b"durable data " * 100)
        fs.sync()
        nvme.flush_barrier()
        nvme.crash()
        store2 = ObjectStore(nvme)
        store2.recover()
        fs2 = SlsFS.recover(store2)
        vfs2 = VfsNamespace(fs2)
        g = vfs2.open("/survivor", O_RDWR)
        assert g.read(13) == b"durable data "
        assert g.vnode.size == 1300

    def test_unsynced_data_lost_in_crash(self, vfs, fs, store, nvme):
        f = vfs.open("/synced", O_RDWR | O_CREAT)
        f.write(b"old")
        fs.sync()
        nvme.flush_barrier()
        f.write(b"NEW-UNSYNCED")
        nvme.crash()
        store2 = ObjectStore(nvme)
        store2.recover()
        fs2 = SlsFS.recover(store2)
        g = VfsNamespace(fs2).open("/synced", O_RDWR)
        assert g.read(3) == b"old"

    def test_incremental_sync_deduplicates(self, vfs, fs, store):
        f = vfs.open("/f", O_RDWR | O_CREAT)
        f.write(b"A" * PAGE_SIZE * 4)
        fs.sync()
        written_before = store.stats.pages_written
        f.seek(0)
        f.write(b"B")  # dirty one page
        fs.sync()
        # Only the changed page is stored anew (others dedup).
        assert store.stats.pages_written == written_before + 1

    def test_directory_tree_survives(self, vfs, fs, store, nvme):
        vfs.mkdir("/a")
        vfs.mkdir("/a/b")
        vfs.open("/a/b/leaf", O_RDWR | O_CREAT).write(b"x")
        fs.sync()
        nvme.flush_barrier()
        store2 = ObjectStore(nvme)
        store2.recover()
        fs2 = SlsFS.recover(store2)
        assert VfsNamespace(fs2).listdir("/a/b") == ["leaf"]

    def test_recover_empty_store(self, store):
        fs = SlsFS.recover(store)
        assert fs.root().is_dir


class TestAnonymousFiles:
    def test_orphan_survives_crash(self, vfs, fs, store, nvme):
        """The paper's edge case: an unlinked-but-open file must
        survive a crash so the application checkpoint can be restored."""
        table = FdTable()
        f = vfs.open("/anon", O_RDWR | O_CREAT)
        table.install(f)
        f.write(b"anonymous content")
        vfs.unlink("/anon")
        fs.sync()
        nvme.flush_barrier()
        nvme.crash()
        store2 = ObjectStore(nvme)
        store2.recover()
        fs2 = SlsFS.recover(store2)
        assert fs2.orphans.orphans() == [f.vnode.ino]
        # Content readable through the recovered inode.
        inode = fs2._inodes[f.vnode.ino]
        vnode = fs2._make_vnode(inode)
        assert fs2.read(vnode, 0, 17) == b"anonymous content"

    def test_orphan_reclaimed_on_final_close(self, vfs, fs):
        table = FdTable()
        f = vfs.open("/anon", O_RDWR | O_CREAT)
        fd = table.install(f)
        f.write(b"x")
        ino = f.vnode.ino
        vfs.unlink("/anon")
        assert ino in fs._inodes
        table.close(fd)
        assert ino not in fs._inodes

    def test_posix_fs_would_lose_orphan(self, nvme):
        """Contrast: tmpfs (a POSIX fs) loses anonymous files on crash."""
        from repro.posix.vnode import TmpFS

        tmp = TmpFS()
        vfs = VfsNamespace(tmp)
        f = vfs.open("/anon", O_RDWR | O_CREAT)
        f.write(b"doomed")
        vfs.unlink("/anon")
        tmp.crash()
        assert tmp._data == {}


class TestClones:
    def test_zero_copy_clone(self, vfs, fs, store):
        f = vfs.open("/src", O_RDWR | O_CREAT)
        f.write(b"clone me " * 1000)
        fs.sync()
        pages_before = store.stats.pages_written
        clone = fs.clone_file(f.vnode, fs.root(), "dst")
        fs.sync()
        # Clone shares every page: no new page writes.
        assert store.stats.pages_written == pages_before
        g = vfs.open("/dst", O_RDWR)
        assert g.read(9) == b"clone me "

    def test_clone_diverges_on_write(self, vfs, fs):
        f = vfs.open("/src", O_RDWR | O_CREAT)
        f.write(b"original")
        fs.clone_file(f.vnode, fs.root(), "dst")
        g = vfs.open("/dst", O_RDWR)
        g.write(b"MUTATED!")
        f.seek(0)
        assert f.read(8) == b"original"

    def test_clone_of_directory_rejected(self, vfs, fs):
        vfs.mkdir("/d")
        with pytest.raises(IsADirectory):
            fs.clone_file(vfs.stat("/d"), fs.root(), "copy")

    def test_clone_name_conflict(self, vfs, fs):
        f = vfs.open("/src", O_RDWR | O_CREAT)
        with pytest.raises(FileExists):
            fs.clone_file(f.vnode, fs.root(), "src")
