"""Error-path tests for the restore engine and image loader."""

import pytest

from repro.core.backends import make_disk_backend
from repro.core.checkpoint import CheckpointImage
from repro.core.orchestrator import SLS
from repro.core.restore import load_image_from_store
from repro.errors import RestoreError
from repro.hw.nvme import NvmeDevice
from repro.posix.kernel import Kernel
from repro.posix.syscalls import Syscalls
from repro.units import GIB, PAGE_SIZE


@pytest.fixture
def kernel():
    return Kernel(memory_bytes=4 * GIB)


@pytest.fixture
def sls(kernel):
    return SLS(kernel)


class TestRestoreErrors:
    def test_empty_image_rejected(self, sls):
        image = CheckpointImage(name="hollow", group_name="g", epoch=1,
                                incremental=False, meta={})
        with pytest.raises(RestoreError):
            sls.restore(image)

    def test_memory_restore_without_pages_rejected(self, sls):
        image = CheckpointImage(name="hollow", group_name="g", epoch=1,
                                incremental=False, meta={})
        with pytest.raises(RestoreError):
            sls.restore(image, backend_name="memory")

    def test_loader_rejects_plain_snapshot(self, kernel, sls):
        """A snapshot without a pagemap delta (e.g. an SLSFS snapshot)
        is not a restorable process image."""
        backend = make_disk_backend(kernel, NvmeDevice(kernel.clock))
        store = backend.store
        ref = store.write_meta(oid=1, value={"not": "an image"})
        snap = store.commit_snapshot("plain", meta={"incremental": False},
                                     records=[ref], pages=[])
        with pytest.raises(RestoreError):
            load_image_from_store(store, snap)

    def test_loader_rejects_recordless_snapshot(self, kernel):
        device = NvmeDevice(kernel.clock)
        from repro.objstore.store import ObjectStore

        store = ObjectStore(device)
        snap = store.commit_snapshot("empty", meta={"incremental": False},
                                     records=[], pages=[])
        with pytest.raises(RestoreError):
            load_image_from_store(store, snap)

    def test_restore_engine_survives_group_churn(self, kernel, sls):
        """Images from unpersisted groups stay restorable while their
        store backend is referenced by the image itself."""
        proc = kernel.spawn("app")
        sys = Syscalls(kernel, proc)
        entry = sys.mmap(4 * PAGE_SIZE, name="heap")
        sys.populate(entry.start, 4 * PAGE_SIZE, fill=b"x")
        group = sls.persist(proc, name="app")
        backend = make_disk_backend(kernel, NvmeDevice(kernel.clock))
        group.attach(backend)
        image = sls.checkpoint(group)
        sls.barrier(group)
        sls.unpersist(group)
        procs, _ = sls.restore(image, backend_name="disk0",
                               store=backend.store,
                               new_instance=True, name_suffix="-r")
        assert Syscalls(kernel, procs[0]).peek(entry.start, 1) == b"x"
