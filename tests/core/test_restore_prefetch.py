"""Recorded-fault-order prefetch: record, replay, and the option surface.

The tentpole's end-to-end story: a lazy restore records the demand
fault sequence into a :class:`FaultOrderLog`; replaying that log as a
prefetch stream warms the restore-side page cache so the same faults
hit cache — and the restored memory is byte-identical to an eager
restore, page for page.
"""

import pytest

from repro.core.api import AuroraApi
from repro.core.backends import make_disk_backend
from repro.core.options import RestoreOptions
from repro.core.orchestrator import SLS
from repro.errors import SlsError
from repro.hw.nvme import NvmeDevice
from repro.objstore.pagecache import FaultOrderLog
from repro.posix.kernel import Kernel
from repro.posix.syscalls import Syscalls
from repro.units import GIB, PAGE_SIZE

PAGES = 64
# A scrambled but deterministic touch order (17 is coprime with 64).
FAULT_ORDER = [(page * 17) % PAGES for page in range(PAGES)]


@pytest.fixture
def kernel():
    return Kernel(memory_bytes=8 * GIB)


@pytest.fixture
def sls(kernel):
    return SLS(kernel)


@pytest.fixture
def world(kernel, sls):
    """App on a disk backend, one checkpoint, store in hand."""
    proc = kernel.spawn("app")
    sysc = Syscalls(kernel, proc)
    entry = sysc.mmap(PAGES * PAGE_SIZE, name="heap")
    sysc.populate(entry.start, PAGES * PAGE_SIZE,
                  fill_fn=lambda i: b"page-%03d" % i)
    group = sls.persist(proc, name="app")
    backend = make_disk_backend(kernel, NvmeDevice(kernel.clock))
    group.attach(backend)
    image = sls.checkpoint(group)
    sls.barrier(group)
    return proc, sysc, entry, group, image, backend.store


def _touch_all(kernel, proc, entry, order):
    """Fault pages in ``order``; return their contents in page order."""
    sysc = Syscalls(kernel, proc)
    seen = {}
    for page in order:
        seen[page] = sysc.peek(entry.start + page * PAGE_SIZE, PAGE_SIZE)
    return [seen[page] for page in sorted(seen)]


class TestRecording:
    def test_fault_order_is_captured_in_touch_order(self, world, sls, kernel):
        _, _, entry, _, image, _store = world
        log = FaultOrderLog()
        procs, metrics = sls.restore(
            image, backend_name="disk0", lazy=True, prefetch="off",
            record_faults=True, fault_log=log,
            new_instance=True, name_suffix="-rec",
        )
        assert metrics.pages_lazy > 0
        _touch_all(kernel, procs[0], entry, FAULT_ORDER)
        assert len(log) == PAGES
        assert [rec.pindex for rec in log.entries] == FAULT_ORDER
        # Distinct page contents mean distinct content hashes.
        assert len({rec.content_hash for rec in log.entries}) == PAGES

    def test_no_recording_without_the_flag(self, world, sls, kernel):
        _, _, entry, _, image, _store = world
        log = FaultOrderLog()
        procs, _ = sls.restore(
            image, backend_name="disk0", lazy=True, prefetch="off",
            fault_log=log, new_instance=True, name_suffix="-off",
        )
        _touch_all(kernel, procs[0], entry, FAULT_ORDER)
        assert len(log) == 0


class TestReplay:
    def _recorded_log(self, sls, kernel, entry, image):
        log = FaultOrderLog()
        procs, _ = sls.restore(
            image, backend_name="disk0", lazy=True, prefetch="off",
            record_faults=True, fault_log=log,
            new_instance=True, name_suffix="-rec",
        )
        _touch_all(kernel, procs[0], entry, FAULT_ORDER)
        return log

    def test_replay_equals_eager_page_for_page(self, world, sls, kernel):
        _, _, entry, _, image, store = world
        eager_procs, _ = sls.restore(
            image, backend_name="disk0",
            new_instance=True, name_suffix="-eager",
        )
        expected = _touch_all(kernel, eager_procs[0], entry, range(PAGES))
        log = self._recorded_log(sls, kernel, entry, image)
        procs, metrics = sls.restore(
            image, backend_name="disk0", lazy=True, prefetch="recorded",
            fault_log=log, new_instance=True, name_suffix="-replay",
        )
        assert metrics.pages_lazy > 0  # still a lazy restore
        got = _touch_all(kernel, procs[0], entry, FAULT_ORDER)
        assert got == expected

    def test_replayed_faults_hit_the_cache(self, world, sls, kernel):
        _, _, entry, _, image, store = world
        log = self._recorded_log(sls, kernel, entry, image)
        store.pagecache.clear()
        hits_before = store.pagecache.hits
        misses_before = store.pagecache.misses
        procs, _ = sls.restore(
            image, backend_name="disk0", lazy=True, prefetch="recorded",
            fault_log=log, new_instance=True, name_suffix="-replay",
        )
        _touch_all(kernel, procs[0], entry, FAULT_ORDER)
        assert store.pagecache.hits - hits_before >= PAGES
        assert store.pagecache.misses == misses_before
        counter = kernel.obs.registry.counter(
            "sls.restore_pages_prefetched_total",
            group="app", backend="disk0",
        )
        assert counter.value == PAGES

    def test_replay_with_empty_log_still_restores(self, world, sls, kernel):
        _, _, entry, _, image, _store = world
        procs, _ = sls.restore(
            image, backend_name="disk0", lazy=True, prefetch="recorded",
            fault_log=FaultOrderLog(), new_instance=True, name_suffix="-e",
        )
        got = _touch_all(kernel, procs[0], entry, FAULT_ORDER)
        assert all(
            got[page].startswith(b"page-%03d" % page) for page in range(PAGES)
        )


class TestHotDedup:
    def test_hot_refs_deduped_by_content_hash(self, kernel, sls):
        # Eight hot pages with *identical* content share one content
        # hash; the hot prefetch must fetch that page once, yet still
        # install every hot pindex.
        proc = kernel.spawn("app")
        sysc = Syscalls(kernel, proc)
        entry = sysc.mmap(32 * PAGE_SIZE, name="heap")
        sysc.populate(entry.start, 32 * PAGE_SIZE, fill=b"cold")
        group = sls.persist(proc, name="app")
        backend = make_disk_backend(kernel, NvmeDevice(kernel.clock))
        group.attach(backend)
        sls.checkpoint(group)
        for i in range(8):  # the hot set: all the same bytes
            sysc.poke(entry.start + i * PAGE_SIZE, b"same-hot-content")
        image = sls.checkpoint(group)
        sls.barrier(group)
        store = backend.store
        store.pagecache.clear()
        misses_before = store.pagecache.misses
        procs, metrics = sls.restore(
            image, backend_name="disk0", lazy=True, prefetch="hot",
            new_instance=True, name_suffix="-hot",
        )
        # One unique hash in the hot set -> exactly one store miss.
        assert store.pagecache.misses - misses_before == 1
        assert metrics.pages_installed >= 8
        rsys = Syscalls(kernel, procs[0])
        faults_before = kernel.mem.stats.pager_in
        for i in range(8):
            assert rsys.peek(entry.start + i * PAGE_SIZE, 16) == (
                b"same-hot-content"
            )
        assert kernel.mem.stats.pager_in == faults_before


class TestOptionSurface:
    def test_prefetch_policy_values(self):
        for policy in RestoreOptions.PREFETCH_POLICIES:
            RestoreOptions(lazy=True, prefetch=policy,
                           fault_log=FaultOrderLog())
        with pytest.raises(SlsError):
            RestoreOptions(lazy=True, prefetch="psychic")

    def test_prefetch_requires_lazy(self):
        with pytest.raises(SlsError):
            RestoreOptions(prefetch="hot")

    def test_recorded_requires_fault_log(self):
        with pytest.raises(SlsError):
            RestoreOptions(lazy=True, prefetch="recorded")

    def test_record_faults_requires_lazy_and_log(self):
        with pytest.raises(SlsError):
            RestoreOptions(record_faults=True, fault_log=FaultOrderLog())
        with pytest.raises(SlsError):
            RestoreOptions(lazy=True, record_faults=True)

    def test_fault_log_type_checked(self):
        with pytest.raises(SlsError):
            RestoreOptions(lazy=True, fault_log="faults.jsonl")

    def test_engine_kwargs_carry_the_new_knobs(self):
        log = FaultOrderLog()
        opts = RestoreOptions(lazy=True, prefetch="recorded",
                              record_faults=True, fault_log=log)
        kw = opts.engine_kwargs()
        assert kw["prefetch"] == "recorded"
        assert kw["record_faults"] is True
        assert kw["fault_log"] is log

    def test_api_exclusivity_covers_the_new_keywords(self, world, kernel, sls):
        proc, *_ = world
        api = AuroraApi(sls, proc)
        with pytest.raises(SlsError):
            api.sls_restore(
                prefetch="off",
                options=RestoreOptions(lazy=True),
            )
        with pytest.raises(SlsError):
            api.sls_restore(
                fault_log=FaultOrderLog(),
                options=RestoreOptions(lazy=True),
            )

    def test_api_record_and_replay_roundtrip(self, world, kernel, sls):
        proc, _, entry, _, _image, store = world
        api = AuroraApi(sls, proc)
        log = FaultOrderLog()
        procs, _ = api.sls_restore(
            lazy=True, prefetch="off", record_faults=True, fault_log=log,
            new_instance=True, name_suffix="-r1", backend="disk0",
        )
        _touch_all(kernel, procs[0], entry, FAULT_ORDER)
        assert len(log) == PAGES
        procs, _ = api.sls_restore(
            options=RestoreOptions(
                backend="disk0", lazy=True, prefetch="recorded",
                fault_log=log, new_instance=True, name_suffix="-r2",
            )
        )
        got = _touch_all(kernel, procs[0], entry, FAULT_ORDER)
        assert got[0].startswith(b"page-000")
