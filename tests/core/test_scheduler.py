"""Unit tests for the per-tenant QoS checkpoint scheduler."""

import pytest

from repro.core.backends import DiskBackend, MemoryBackend
from repro.core.orchestrator import SLS
from repro.core.scheduler import (
    DEFAULT_TENANT,
    CheckpointScheduler,
    TenantQoS,
)
from repro.errors import SlsError
from repro.hw.nvme import NvmeDevice
from repro.hw.specs import OPTANE_900P, with_queue_model
from repro.objstore.store import ObjectStore
from repro.posix.kernel import Kernel
from repro.posix.syscalls import Syscalls
from repro.units import GIB, PAGE_SIZE


@pytest.fixture
def kernel():
    return Kernel(memory_bytes=8 * GIB)


@pytest.fixture
def sls(kernel):
    return SLS(kernel)


@pytest.fixture
def disk(kernel):
    spec = with_queue_model(OPTANE_900P, 8, num_queues=2)
    device = NvmeDevice(kernel.clock, spec=spec)
    store = ObjectStore(device, mem=kernel.mem)
    backend = DiskBackend("disk0", store, batched=True)
    backend.bind(kernel)
    return backend


def make_group(kernel, sls, backend, name="app", pages=16, tenant=None):
    proc = kernel.spawn(name)
    sysc = Syscalls(kernel, proc)
    heap = sysc.mmap(pages * PAGE_SIZE, name="heap")
    sysc.populate(
        heap.start, pages * PAGE_SIZE,
        fill_fn=lambda i: b"%s-%08d" % (name.encode(), i),
    )
    group = sls.persist(proc, name=name)
    group.attach(backend)
    if tenant is not None:
        sls.scheduler.assign(group, tenant=tenant)
    return group, sysc, heap


class TestTenancy:
    def test_unassigned_group_bills_default(self, kernel, sls, disk):
        group, _, _ = make_group(kernel, sls, disk)
        assert sls.scheduler.tenant_of(group) == DEFAULT_TENANT

    def test_assign_requires_registered_tenant(self, kernel, sls, disk):
        group, _, _ = make_group(kernel, sls, disk)
        with pytest.raises(SlsError, match="unknown tenant"):
            sls.scheduler.assign(group, tenant="ghost")

    def test_qos_validation(self):
        with pytest.raises(SlsError, match="weight"):
            TenantQoS(weight=0)
        with pytest.raises(SlsError, match="max_pending"):
            TenantQoS(max_pending=0)


class TestLifecycle:
    def test_unthrottled_submit_is_synchronous(self, kernel, sls, disk):
        group, _, _ = make_group(kernel, sls, disk)
        ticket = sls.scheduler.submit(group)
        # No throttle: dispatch ran inline, the checkpoint exists.
        assert ticket.status in ("inflight", "durable")
        assert ticket.image is not None
        sls.barrier(group)
        assert ticket.status == "durable"
        assert ticket.flush_lag_ns is not None
        assert ticket.flush_lag_ns > 0

    def test_memory_backend_completes_inline(self, kernel, sls):
        backend = MemoryBackend("mem0")
        group, _, _ = make_group(kernel, sls, backend)
        ticket = sls.scheduler.submit(group)
        assert ticket.status == "durable"
        assert sls.scheduler.outstanding() == 0

    def test_completed_lag_recorded_per_tenant(self, kernel, sls, disk):
        sls.scheduler.register_tenant("t1", qos=TenantQoS())
        group, _, _ = make_group(kernel, sls, disk, tenant="t1")
        sls.scheduler.submit(group)
        sls.barrier(group)
        assert len(sls.scheduler.completed_lags["t1"]) == 1


class TestAdmission:
    def test_pending_cap_rejects(self, kernel, sls, disk):
        sls.scheduler.max_inflight_total = 1
        sls.scheduler.register_tenant(
            "capped", qos=TenantQoS(max_pending=1)
        )
        groups = [
            make_group(kernel, sls, disk, name=f"app{i}", tenant="capped")[0]
            for i in range(4)
        ]
        tickets = [sls.scheduler.submit(g) for g in groups]
        # First dispatches (inflight), second queues, rest are rejected.
        assert [t.status for t in tickets[:2]] == ["inflight", "pending"]
        assert all(t.status == "rejected" for t in tickets[2:])
        assert sls.scheduler.tickets_rejected == 2
        for ticket in tickets[2:]:
            assert "cap 1" in ticket.reason
        for group in groups:
            sls.barrier(group)
        # Rejected tickets never ran; admitted ones all became durable.
        assert [t.status for t in tickets] == [
            "durable", "durable", "rejected", "rejected"
        ]

    def test_max_inflight_total_defers_dispatch(self, kernel, sls, disk):
        sls.scheduler.max_inflight_total = 1
        a, _, _ = make_group(kernel, sls, disk, name="a")
        b, _, _ = make_group(kernel, sls, disk, name="b")
        ta = sls.scheduler.submit(a)
        tb = sls.scheduler.submit(b)
        assert ta.status == "inflight"
        assert tb.status == "pending"
        sls.barrier(b)
        assert ta.status == "durable"
        assert tb.status == "durable"
        # b could only start after a went durable
        assert tb.started_at_ns >= ta.durable_at_ns

    def test_per_tenant_inflight_cap_skips_not_starves(self, kernel, sls, disk):
        sls.scheduler.max_inflight_total = 2
        sls.scheduler.register_tenant(
            "greedy", qos=TenantQoS(max_inflight=1)
        )
        sls.scheduler.register_tenant("meek", qos=TenantQoS())
        g1, _, _ = make_group(kernel, sls, disk, name="g1", tenant="greedy")
        g2, _, _ = make_group(kernel, sls, disk, name="g2", tenant="greedy")
        m, _, _ = make_group(kernel, sls, disk, name="m", tenant="meek")
        t1 = sls.scheduler.submit(g1)
        t2 = sls.scheduler.submit(g2)
        tm = sls.scheduler.submit(m)
        # greedy's second request is tenant-blocked; meek's dispatches
        # around it into the free global slot.
        assert t1.status == "inflight"
        assert t2.status == "pending"
        assert tm.status == "inflight"
        for group in (g1, g2, m):
            sls.barrier(group)
        assert {t.status for t in (t1, t2, tm)} == {"durable"}


class TestWfq:
    def test_weighted_interleave(self, kernel, sls):
        # Pure ordering test on a throttled scheduler with a manual
        # drain: a weight-4 tenant gets 4 slots per weight-1 slot.
        backend = MemoryBackend("mem0")
        sls.scheduler.register_tenant("heavy", qos=TenantQoS(weight=4))
        sls.scheduler.register_tenant("light", qos=TenantQoS(weight=1))
        heavy = [
            make_group(kernel, sls, backend, name=f"h{i}", tenant="heavy")[0]
            for i in range(4)
        ]
        light = [
            make_group(kernel, sls, backend, name=f"l{i}", tenant="light")[0]
            for i in range(2)
        ]
        order = []
        real_run = CheckpointScheduler._run

        def spy_run(self, ticket):
            order.append(ticket.tenant)
            real_run(self, ticket)

        sls.scheduler._run = spy_run.__get__(sls.scheduler)
        # Hold dispatch shut while the queue builds, then open it.
        sls.scheduler.max_inflight_total = 0
        for group in light[:1] + heavy + light[1:]:
            sls.scheduler.submit(group)
        sls.scheduler.max_inflight_total = None
        sls.scheduler._dispatch()
        # Finish tags: light's two requests land at 1000 and 2000
        # (quantum/1); heavy's four at 250, 500, 750, 1000 (quantum/4).
        # Heavy's first three beat light's first; the 1000-tag tie goes
        # to light's earlier submission seq.  Net: a 4:1 interleave
        # instead of strict FIFO.
        assert order == [
            "heavy", "heavy", "heavy", "light", "heavy", "light"
        ]

    def test_slo_violation_counted(self, kernel, sls, disk):
        sls.scheduler.register_tenant(
            "strict", qos=TenantQoS(flush_slo_ns=1)
        )
        group, _, _ = make_group(kernel, sls, disk, tenant="strict")
        sls.scheduler.submit(group)
        sls.barrier(group)
        assert sls.scheduler.slo_violations == 1
