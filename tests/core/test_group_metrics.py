"""Tests for persistence-group management and the metrics records."""

import pytest

from repro.core.backends import MemoryBackend, make_disk_backend
from repro.core.checkpoint import CheckpointImage
from repro.core.group import DEFAULT_PERIOD_NS, PersistenceGroup
from repro.core.metrics import CheckpointMetrics, GroupStats, RestoreMetrics
from repro.core.orchestrator import SLS
from repro.errors import BackendError, NotPersisted
from repro.hw.nvme import NvmeDevice
from repro.posix.kernel import Kernel
from repro.posix.syscalls import Syscalls
from repro.units import GIB, KIB


@pytest.fixture
def kernel():
    return Kernel(memory_bytes=4 * GIB)


@pytest.fixture
def sls(kernel):
    return SLS(kernel)


class TestGroupManagement:
    def test_default_period_is_100hz(self):
        assert DEFAULT_PERIOD_NS == 10_000_000

    def test_group_requires_exactly_one_target(self, kernel):
        proc = kernel.spawn("app")
        box = kernel.create_container("c")
        with pytest.raises(NotPersisted):
            PersistenceGroup(kernel, "bad", root=proc, container=box)
        with pytest.raises(NotPersisted):
            PersistenceGroup(kernel, "bad")

    def test_double_attach_rejected(self, kernel, sls):
        proc = kernel.spawn("app")
        group = sls.persist(proc)
        group.attach(MemoryBackend("m"))
        with pytest.raises(BackendError):
            group.attach(MemoryBackend("m"))

    def test_detach_unknown_rejected(self, kernel, sls):
        proc = kernel.spawn("app")
        group = sls.persist(proc)
        with pytest.raises(BackendError):
            group.detach("ghost")

    def test_backend_by_name(self, kernel, sls):
        proc = kernel.spawn("app")
        group = sls.persist(proc)
        backend = MemoryBackend("m")
        group.attach(backend)
        assert group.backend_by_name("m") is backend
        with pytest.raises(BackendError):
            group.backend_by_name("ghost")

    def test_dead_processes_leave_membership(self, kernel, sls):
        proc = kernel.spawn("app")
        child = kernel.fork(proc)
        group = sls.persist(proc)
        assert group.member_pids() == {proc.pid, child.pid}
        kernel.exit(child)
        assert group.member_pids() == {proc.pid}

    def test_image_by_name_picks_newest(self, kernel, sls, disk_backend):
        proc = kernel.spawn("app")
        sys = Syscalls(kernel, proc)
        entry = sys.mmap(16 * KIB)
        sys.poke(entry.start, b"a")
        group = sls.persist(proc)
        group.attach(disk_backend)
        sls.checkpoint(group, name="same")
        sys.poke(entry.start, b"b")
        second = sls.checkpoint(group, name="same")
        assert group.image_by_name("same") is second

    def test_find_group(self, kernel, sls):
        proc = kernel.spawn("app")
        group = sls.persist(proc, name="named")
        assert sls.find_group("named") is group
        assert sls.find_group("ghost") is None


class TestMetricsRecords:
    def test_checkpoint_rows_formatting(self):
        metrics = CheckpointMetrics(
            metadata_copy_ns=267_900, data_copy_ns=5_145_900,
            stop_time_ns=5_413_800,
        )
        rows = dict(metrics.rows())
        assert rows["Metadata copy"] == "267.9 us"
        assert rows["Lazy data copy"] == "5145.9 us"
        assert rows["Application stop time"] == "5413.8 us"
        assert "Full" in str(metrics)

    def test_restore_rows_na_for_memory(self):
        metrics = RestoreMetrics(memory_ns=100, metadata_ns=200)
        rows = dict(metrics.rows())
        assert rows["Object Store Read"] == "N/A"
        assert metrics.total_ns == 300

    def test_flush_lag(self):
        metrics = CheckpointMetrics(
            started_at_ns=1000, stop_time_ns=500, durable_at_ns=5000
        )
        assert metrics.flush_lag_ns == 3500

    def test_group_stats_history_bounded(self):
        stats = GroupStats()
        for i in range(100):
            stats.record(CheckpointMetrics(stop_time_ns=i), keep_history=10)
        assert stats.checkpoints_taken == 100
        assert len(stats.history) == 10
        assert stats.history[-1].stop_time_ns == 99

    def test_mean_stop(self):
        stats = GroupStats()
        assert stats.mean_stop_ns() == 0.0
        stats.record(CheckpointMetrics(stop_time_ns=100))
        stats.record(CheckpointMetrics(stop_time_ns=300))
        assert stats.mean_stop_ns() == 200.0


class TestCheckpointImageLifecycle:
    def test_lineage(self):
        a = CheckpointImage(name="a", group_name="g", epoch=1,
                            incremental=False, meta={})
        b = CheckpointImage(name="b", group_name="g", epoch=2,
                            incremental=True, meta={}, parent=a)
        c = CheckpointImage(name="c", group_name="g", epoch=3,
                            incremental=True, meta={}, parent=b)
        assert [i.name for i in c.lineage()] == ["c", "b", "a"]

    def test_on_durable_after_the_fact(self):
        image = CheckpointImage(name="x", group_name="g", epoch=1,
                                incremental=False, meta={})
        image.metrics.backends_expected = 1
        fired = []
        image.mark_durable("disk0", when_ns=42)
        image.on_durable(lambda img: fired.append(img.metrics.durable_at_ns))
        assert fired == [42]

    def test_mark_durable_idempotent(self):
        image = CheckpointImage(name="x", group_name="g", epoch=1,
                                incremental=False, meta={})
        image.metrics.backends_expected = 1
        image.mark_durable("a", when_ns=10)
        image.mark_durable("a", when_ns=99)
        assert image.metrics.durable_at_ns == 10

    def test_release_memory_drops_held_frames(self, kernel):
        from repro.mem.page import Page

        phys = kernel.phys
        page = phys.allocate(payload=b"img")
        image = CheckpointImage(name="x", group_name="g", epoch=1,
                                incremental=False, meta={})
        image.memory_pages = {1: {0: page}}
        image._held_frames = {(1, 0)}
        assert image.release_memory(phys) == 1
        assert phys.allocated_frames == 0
        assert image.release_memory(phys) == 0  # idempotent
