"""Tests for data-only checkpoints (the explicit persistence primitive)."""

import pytest

from repro.core.api import AuroraApi
from repro.core.backends import make_disk_backend
from repro.core.datasnap import (
    datarestore,
    datasnap,
    drop_datasnap,
    list_datasnaps,
)
from repro.core.orchestrator import SLS
from repro.errors import NoSuchObject, SlsError
from repro.hw.nvme import NvmeDevice
from repro.posix.kernel import Kernel
from repro.posix.syscalls import Syscalls
from repro.units import GIB, PAGE_SIZE


@pytest.fixture
def kernel():
    return Kernel(memory_bytes=4 * GIB)


@pytest.fixture
def sls(kernel):
    return SLS(kernel)


@pytest.fixture
def world(kernel, sls):
    proc = kernel.spawn("db")
    sys = Syscalls(kernel, proc)
    entry = sys.mmap(16 * PAGE_SIZE, name="buffer-pool")
    sys.populate(entry.start, 16 * PAGE_SIZE, fill_fn=lambda i: b"row-%d" % i)
    group = sls.persist(proc, name="db")
    backend = make_disk_backend(kernel, NvmeDevice(kernel.clock))
    group.attach(backend)
    api = AuroraApi(sls, proc)
    return proc, sys, entry, backend.store, api


class TestDatasnap:
    def test_snap_and_restore_roundtrip(self, world):
        proc, sys, entry, store, api = world
        api.sls_datasnap(entry.start, 16 * PAGE_SIZE, "pool-v1")
        sys.poke(entry.start, b"MUTATED")
        sys.poke(entry.start + 7 * PAGE_SIZE, b"ALSO-MUTATED")
        api.sls_datarestore("pool-v1")
        assert sys.peek(entry.start, 5) == b"row-0"
        assert sys.peek(entry.start + 7 * PAGE_SIZE, 5) == b"row-7"

    def test_no_execution_state_captured(self, world):
        proc, sys, entry, store, api = world
        snap = api.sls_datasnap(entry.start, 4 * PAGE_SIZE, "small")
        _meta, records, pages = store.load_manifest(snap.snapshot)
        value = store.read_meta(records[0])
        assert value["kind"] == "datasnap"
        assert "procs" not in value  # no process metadata at all
        assert len(pages) == 4

    def test_restore_to_different_address(self, world):
        proc, sys, entry, store, api = world
        api.sls_datasnap(entry.start, 4 * PAGE_SIZE, "relocatable")
        other = sys.mmap(4 * PAGE_SIZE, name="elsewhere")
        api.sls_datarestore("relocatable", addr=other.start)
        assert sys.peek(other.start + 2 * PAGE_SIZE, 5) == b"row-2"

    def test_resnapshot_dedups_unchanged_pages(self, world):
        proc, sys, entry, store, api = world
        api.sls_datasnap(entry.start, 16 * PAGE_SIZE, "v1")
        written_before = store.stats.pages_written
        sys.poke(entry.start + 3 * PAGE_SIZE, b"changed")
        api.sls_datasnap(entry.start, 16 * PAGE_SIZE, "v2")
        # Only the changed page costs new storage.
        assert store.stats.pages_written == written_before + 1

    def test_versioned_snapshots_coexist(self, world):
        proc, sys, entry, store, api = world
        api.sls_datasnap(entry.start, 2 * PAGE_SIZE, "v1")
        sys.poke(entry.start, b"generation-2")
        api.sls_datasnap(entry.start, 2 * PAGE_SIZE, "v2")
        api.sls_datarestore("v1")
        assert sys.peek(entry.start, 5) == b"row-0"
        api.sls_datarestore("v2")
        assert sys.peek(entry.start, 12) == b"generation-2"

    def test_list_and_drop(self, world):
        proc, sys, entry, store, api = world
        api.sls_datasnap(entry.start, PAGE_SIZE, "a")
        api.sls_datasnap(entry.start, PAGE_SIZE, "b")
        assert api.sls_datasnaps() == ["a", "b"]
        drop_datasnap(store, "a")
        assert api.sls_datasnaps() == ["b"]
        with pytest.raises(NoSuchObject):
            drop_datasnap(store, "a")

    def test_survives_crash(self, world, kernel):
        from repro.objstore.store import ObjectStore
        from repro.mem.address_space import AddressSpace

        proc, sys, entry, store, api = world
        api.sls_datasnap(entry.start, 4 * PAGE_SIZE, "durable", sync=True)
        store.device.crash()
        fresh = ObjectStore(store.device, mem=kernel.mem)
        fresh.recover()
        target = AddressSpace(kernel.mem, "post-crash")
        target.mmap(4 * PAGE_SIZE, addr=entry.start)
        datarestore(fresh, target, "durable")
        assert target.read(entry.start + PAGE_SIZE, 5) == b"row-1"

    def test_validation(self, world):
        proc, sys, entry, store, api = world
        with pytest.raises(SlsError):
            api.sls_datasnap(entry.start + 1, PAGE_SIZE, "unaligned")
        with pytest.raises(SlsError):
            api.sls_datasnap(entry.start, 0, "empty")
        with pytest.raises(NoSuchObject):
            api.sls_datarestore("ghost")

    def test_unmapped_region_faults(self, world):
        from repro.errors import SegmentationFault

        proc, sys, entry, store, api = world
        with pytest.raises(SegmentationFault):
            api.sls_datasnap(0xDEAD0000, PAGE_SIZE, "bad")
