"""Direct tests for the backend implementations."""

import pytest

from repro.core.backends import (
    DiskBackend,
    MemoryBackend,
    NvdimmBackend,
    RemoteBackend,
    make_disk_backend,
)
from repro.core.orchestrator import SLS
from repro.hw.netdev import NetworkLink
from repro.hw.nvdimm import NvdimmDevice
from repro.hw.nvme import NvmeDevice
from repro.objstore.store import ObjectStore
from repro.posix.kernel import Kernel
from repro.posix.syscalls import Syscalls
from repro.units import GIB, KIB, PAGE_SIZE


@pytest.fixture
def kernel():
    return Kernel(memory_bytes=4 * GIB)


@pytest.fixture
def sls(kernel):
    return SLS(kernel)


@pytest.fixture
def world(kernel, sls):
    proc = kernel.spawn("app")
    sys = Syscalls(kernel, proc)
    entry = sys.mmap(16 * PAGE_SIZE, name="heap")
    sys.populate(entry.start, 16 * PAGE_SIZE, fill_fn=lambda i: b"pg%d" % i)
    group = sls.persist(proc, name="app")
    return proc, sys, entry, group


class TestNvdimmBackend:
    def test_checkpoint_durable_sooner_than_nvme(self, kernel, sls, world):
        proc, sys, entry, group = world
        nvme = make_disk_backend(kernel, NvmeDevice(kernel.clock), name="nvme")
        nvdimm = NvdimmBackend(
            "nvdimm", ObjectStore(NvdimmDevice(kernel.clock), mem=kernel.mem)
        )
        group.attach(nvme)
        group.attach(nvdimm)
        image = sls.checkpoint(group)
        # NVDIMM's sub-µs latency drains first.
        first_durable = None
        guard = 0
        while not image.durable and guard < 10_000:
            deadline = kernel.events.next_deadline()
            if deadline is None:
                break
            kernel.events.run_until(deadline)
            if image.durable_on and first_durable is None:
                first_durable = next(iter(image.durable_on))
            guard += 1
        assert first_durable == "nvdimm"
        assert image.durable_on == {"nvme", "nvdimm"}

    def test_restorable_from_nvdimm(self, kernel, sls, world):
        proc, sys, entry, group = world
        nvdimm = NvdimmBackend(
            "nvdimm", ObjectStore(NvdimmDevice(kernel.clock), mem=kernel.mem)
        )
        group.attach(nvdimm)
        image = sls.checkpoint(group)
        sls.barrier(group)
        procs, metrics = sls.restore(image, backend_name="nvdimm",
                                     new_instance=True, name_suffix="-n")
        assert metrics.backend == "nvdimm"
        got = Syscalls(kernel, procs[0]).peek(entry.start + PAGE_SIZE, 3)
        assert got == b"pg1"


class TestMemoryBackendFrames:
    def test_holds_frames_flag(self):
        assert MemoryBackend("m").holds_frames
        store = ObjectStore(NvmeDevice(Kernel().clock))
        assert not DiskBackend("d", store).holds_frames

    def test_image_deletion_releases_frames(self, kernel, sls, world):
        proc, sys, entry, group = world
        group.attach(MemoryBackend("memory"))
        sls.checkpoint(group)
        frames_with_image = kernel.phys.allocated_frames
        # Overwrite everything so the image holds sole refs to originals.
        for i in range(16):
            sys.poke(entry.start + i * PAGE_SIZE, b"new%d" % i)
        group.retention = 1
        sls.checkpoint(group, full=True)  # prunes the first image
        assert kernel.phys.allocated_frames < frames_with_image + 16

    def test_parent_deletion_keeps_child_frames_alive(self, kernel, sls, world):
        """Each memory image holds its own frame references, so
        deleting the parent cannot free frames the child inherited."""
        proc, sys, entry, group = world
        memory = MemoryBackend("memory")
        group.attach(memory)
        parent = sls.checkpoint(group)           # full
        sys.poke(entry.start, b"delta")
        child = sls.checkpoint(group)            # incremental, inherits
        memory.delete_image(parent)
        page = child.memory_pages[entry.obj.oid][3]
        assert page.refcount > 0
        assert page.read(0, 3) == b"pg3"
        memory.delete_image(child)               # no double free


class TestRemoteBackendOrdering:
    def test_durability_matches_network_arrival(self, kernel, sls, world):
        proc, sys, entry, group = world
        link = NetworkLink(kernel.clock)
        src = link.attach("src")
        link.attach("dst")
        remote = RemoteBackend("replica", src, "dst")
        group.attach(remote)
        image = sls.checkpoint(group)
        assert not image.durable
        when = sls.barrier(group)
        assert image.durable
        assert when >= link.spec.latency_ns

    def test_bytes_accounted(self, kernel, sls, world):
        proc, sys, entry, group = world
        link = NetworkLink(kernel.clock)
        src = link.attach("src")
        link.attach("dst")
        remote = RemoteBackend("replica", src, "dst")
        group.attach(remote)
        image = sls.checkpoint(group)
        assert remote.bytes_sent > 0
        assert image.metrics.bytes_flushed == remote.bytes_sent
