"""Tests for external consistency (paper §3.2)."""

import pytest

from repro.core.api import AuroraApi
from repro.core.backends import make_disk_backend
from repro.core.orchestrator import SLS
from repro.errors import WouldBlock
from repro.hw.nvme import NvmeDevice
from repro.posix.kernel import Kernel
from repro.posix.syscalls import Syscalls
from repro.units import GIB, KIB


@pytest.fixture
def kernel():
    return Kernel(memory_bytes=4 * GIB)


@pytest.fixture
def sls(kernel):
    return SLS(kernel)


@pytest.fixture
def world(kernel, sls):
    """A persisted server connected to an external client."""
    server = kernel.spawn("server")
    client = kernel.spawn("client")  # outside the group
    ssys, csys = Syscalls(kernel, server), Syscalls(kernel, client)
    entry = ssys.mmap(64 * KIB, name="heap")
    ssys.poke(entry.start, b"state")
    lfd = ssys.bind_listen("svc")
    cfd = csys.connect("svc")
    sfd = ssys.accept(lfd)
    group = sls.persist(server, name="server")
    group.attach(make_disk_backend(kernel, NvmeDevice(kernel.clock)))
    group.extcons.refresh()
    return server, client, ssys, csys, sfd, cfd, group


class TestBoundaryDetection:
    def test_cross_boundary_socket_held(self, world):
        *_, group = world
        assert group.extcons.held_sockets() == 1

    def test_intra_group_socket_not_held(self, kernel, sls, disk_backend):
        proc = kernel.spawn("app")
        sys = Syscalls(kernel, proc)
        a, b = sys.socketpair()  # both ends inside the group
        group = sls.persist(proc)
        group.attach(disk_backend)
        group.extcons.refresh()
        assert group.extcons.held_sockets() == 0
        sys.write(a, b"direct")
        assert sys.read(b, 6) == b"direct"


class TestHoldRelease:
    def test_output_invisible_until_checkpoint_durable(self, world, sls):
        server, client, ssys, csys, sfd, cfd, group = world
        ssys.write(sfd, b"reply-1")
        with pytest.raises(WouldBlock):
            csys.read(cfd, 7)
        sls.checkpoint(group)
        sls.barrier(group)
        assert csys.read(cfd, 7) == b"reply-1"

    def test_post_barrier_output_held_for_next_checkpoint(self, world, sls):
        server, client, ssys, csys, sfd, cfd, group = world
        ssys.write(sfd, b"covered")
        sls.checkpoint(group)
        ssys.write(sfd, b"not-yet")  # sent after the barrier
        sls.barrier(group)
        assert csys.read(cfd, 7) == b"covered"
        with pytest.raises(WouldBlock):
            csys.read(cfd, 7)
        sls.checkpoint(group)
        sls.barrier(group)
        assert csys.read(cfd, 7) == b"not-yet"

    def test_inbound_data_unaffected(self, world):
        server, client, ssys, csys, sfd, cfd, group = world
        csys.write(cfd, b"request")
        assert ssys.read(sfd, 7) == b"request"


class TestFdctl:
    def test_disable_releases_immediately(self, world, sls):
        server, client, ssys, csys, sfd, cfd, group = world
        api = AuroraApi(sls, server)
        api.sls_fdctl(sfd, external_consistency=False)
        ssys.write(sfd, b"fast-path")
        assert csys.read(cfd, 9) == b"fast-path"

    def test_disable_flushes_already_held(self, world, sls):
        server, client, ssys, csys, sfd, cfd, group = world
        ssys.write(sfd, b"was-held")
        api = AuroraApi(sls, server)
        api.sls_fdctl(sfd, external_consistency=False)
        assert csys.read(cfd, 8) == b"was-held"

    def test_reenable(self, world, sls):
        server, client, ssys, csys, sfd, cfd, group = world
        api = AuroraApi(sls, server)
        api.sls_fdctl(sfd, external_consistency=False)
        api.sls_fdctl(sfd, external_consistency=True)
        ssys.write(sfd, b"held-again")
        with pytest.raises(WouldBlock):
            csys.read(cfd, 10)

    def test_fdctl_non_socket_rejected(self, world, sls):
        from repro.errors import SlsError

        server, *_ = world
        api = AuroraApi(sls, server)
        ssys = Syscalls(sls.kernel, server)
        r, _w = ssys.pipe()
        with pytest.raises(SlsError):
            api.sls_fdctl(r, external_consistency=False)


class TestRollbackDiscard:
    def test_rollback_discards_held_output(self, world, sls):
        from repro.core.rollback import rollback

        server, client, ssys, csys, sfd, cfd, group = world
        sls.checkpoint(group)
        sls.barrier(group)
        ssys.write(sfd, b"speculative-output")
        rollback(sls, group)
        # The client must never see output from the destroyed timeline.
        with pytest.raises(WouldBlock):
            csys.read(cfd, 18)
        assert group.extcons.bytes_discarded == 18

    def test_latency_cost_of_extcons(self, world, sls, kernel):
        """Held replies arrive only after flush: extcons trades latency
        for safety (why sls_fdctl exists)."""
        server, client, ssys, csys, sfd, cfd, group = world
        sent_at = kernel.clock.now
        ssys.write(sfd, b"reply")
        sls.checkpoint(group)
        sls.barrier(group)
        received_at = kernel.clock.now
        csys.read(cfd, 5)
        held_latency = received_at - sent_at
        assert held_latency > 100_000  # flush-bound, not send-bound
