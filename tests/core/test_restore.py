"""Tests for the restore engine: memory/disk backends, lazy paging."""

import pytest

from repro.core.backends import MemoryBackend, make_disk_backend
from repro.core.orchestrator import SLS
from repro.errors import RestoreError
from repro.hw.nvme import NvmeDevice
from repro.posix.kernel import Kernel
from repro.posix.process import ProcessState
from repro.posix.syscalls import Syscalls
from repro.units import GIB, MIB, PAGE_SIZE


@pytest.fixture
def kernel():
    return Kernel(memory_bytes=8 * GIB)


@pytest.fixture
def sls(kernel):
    return SLS(kernel)


@pytest.fixture
def world(kernel, sls):
    """App with both memory and disk backends, one checkpoint taken."""
    proc = kernel.spawn("app")
    sys = Syscalls(kernel, proc)
    entry = sys.mmap(1 * MIB, name="heap")
    sys.populate(entry.start, 1 * MIB, fill_fn=lambda i: b"content-%d" % i)
    group = sls.persist(proc, name="app")
    group.attach(make_disk_backend(kernel, NvmeDevice(kernel.clock)))
    group.attach(MemoryBackend("memory"))
    image = sls.checkpoint(group)
    sls.barrier(group)
    return proc, sys, entry, group, image


class TestMemoryRestore:
    def test_content_identical(self, world, sls, kernel):
        _, _, entry, _, image = world
        procs, metrics = sls.restore(
            image, backend_name="memory", new_instance=True, name_suffix="-m"
        )
        rsys = Syscalls(kernel, procs[0])
        assert rsys.peek(entry.start + 7 * PAGE_SIZE, 9) == b"content-7"
        assert metrics.backend == "memory"
        assert metrics.objstore_read_ns == 0

    def test_no_pages_copied(self, world, sls, kernel):
        """'No memory is copied, since Aurora uses COW semantics to
        share pages between the image and the running application.'"""
        _, _, _, _, image = world
        allocs_before = kernel.phys.total_allocations
        sls.restore(image, backend_name="memory", new_instance=True,
                    name_suffix="-m")
        assert kernel.phys.total_allocations == allocs_before

    def test_write_isolation_via_cow(self, world, sls, kernel):
        proc, sys, entry, _, image = world
        procs, _ = sls.restore(
            image, backend_name="memory", new_instance=True, name_suffix="-m"
        )
        rsys = Syscalls(kernel, procs[0])
        rsys.poke(entry.start, b"CLONE-WRITE")
        assert sys.peek(entry.start, 9) == b"content-0"
        assert rsys.peek(entry.start, 11) == b"CLONE-WRITE"

    def test_original_write_does_not_leak_into_clone(self, world, sls, kernel):
        proc, sys, entry, group, image = world
        sys.poke(entry.start, b"ORIGINAL-MOVES-ON")
        procs, _ = sls.restore(
            image, backend_name="memory", new_instance=True, name_suffix="-m"
        )
        rsys = Syscalls(kernel, procs[0])
        assert rsys.peek(entry.start, 9) == b"content-0"

    def test_restored_threads_running(self, world, sls):
        _, _, _, _, image = world
        procs, _ = sls.restore(image, backend_name="memory",
                               new_instance=True, name_suffix="-m")
        assert procs[0].state is ProcessState.ALIVE


class TestDiskRestore:
    def test_eager_reads_everything(self, world, sls, kernel):
        _, _, entry, _, image = world
        procs, metrics = sls.restore(
            image, backend_name="disk0", new_instance=True, name_suffix="-d"
        )
        assert metrics.objstore_read_ns > 0
        assert metrics.pages_installed >= 256
        rsys = Syscalls(kernel, procs[0])
        assert rsys.peek(entry.start + 99 * PAGE_SIZE, 10) == b"content-99"

    def test_phase_order_read_then_metadata_then_memory(self, world, sls):
        _, _, _, _, image = world
        _, metrics = sls.restore(
            image, backend_name="disk0", new_instance=True, name_suffix="-d"
        )
        assert metrics.total_ns == (
            metrics.objstore_read_ns + metrics.metadata_ns + metrics.memory_ns
        )

    def test_unknown_backend_rejected(self, world, sls):
        _, _, _, _, image = world
        with pytest.raises(RestoreError):
            sls.restore(image, backend_name="nope")

    def test_crash_then_restore_from_disk(self, kernel, sls):
        """Full crash flow: disk image survives, memory image does not."""
        proc = kernel.spawn("app")
        sys = Syscalls(kernel, proc)
        entry = sys.mmap(256 * PAGE_SIZE, name="heap")
        sys.populate(entry.start, 256 * PAGE_SIZE, fill=b"precious")
        group = sls.persist(proc, name="app")
        backend = make_disk_backend(kernel, NvmeDevice(kernel.clock))
        group.attach(backend)
        image = sls.checkpoint(group)
        sls.barrier(group)
        # Simulate a machine crash: kill the app; disk survives.
        kernel.exit(proc)
        kernel.reap(proc)
        procs, _ = sls.restore(image, backend_name="disk0")
        rsys = Syscalls(kernel, procs[0])
        assert rsys.peek(entry.start, 8) == b"precious"
        assert procs[0].pid == proc.pid  # original PID reclaimed


class TestLazyRestore:
    def test_lazy_installs_fewer_pages(self, world, sls):
        _, _, _, _, image = world
        _, eager = sls.restore(image, backend_name="disk0",
                               new_instance=True, name_suffix="-e")
        _, lazy = sls.restore(image, backend_name="disk0", lazy=True,
                              new_instance=True, name_suffix="-l")
        assert lazy.pages_installed < eager.pages_installed
        assert lazy.pages_lazy > 0

    def test_lazy_faults_content_on_demand(self, world, sls, kernel):
        _, _, entry, _, image = world
        procs, _ = sls.restore(
            image, backend_name="disk0", lazy=True, prefetch_hot=False,
            new_instance=True, name_suffix="-l",
        )
        rsys = Syscalls(kernel, procs[0])
        faults_before = kernel.mem.stats.pager_in
        assert rsys.peek(entry.start + 123 * PAGE_SIZE, 11) == b"content-123"
        assert kernel.mem.stats.pager_in > faults_before

    def test_lazy_restore_latency_lower(self, world, sls):
        _, _, _, _, image = world
        _, eager = sls.restore(image, backend_name="disk0",
                               new_instance=True, name_suffix="-e2")
        _, lazy = sls.restore(image, backend_name="disk0", lazy=True,
                              prefetch_hot=False,
                              new_instance=True, name_suffix="-l2")
        assert lazy.total_ns < eager.total_ns

    def test_hot_prefetch_reduces_first_touch_faults(self, kernel, sls):
        proc = kernel.spawn("app")
        sys = Syscalls(kernel, proc)
        entry = sys.mmap(128 * PAGE_SIZE, name="heap")
        sys.populate(entry.start, 128 * PAGE_SIZE, fill_fn=lambda i: b"p%d" % i)
        group = sls.persist(proc)
        group.attach(make_disk_backend(kernel, NvmeDevice(kernel.clock)))
        sls.checkpoint(group)
        # Dirty a hot set; the incremental captures exactly those.
        for i in range(8):
            sys.poke(entry.start + i * PAGE_SIZE, b"hot%d" % i)
        image = sls.checkpoint(group)
        sls.barrier(group)
        procs, metrics = sls.restore(
            image, backend_name="disk0", lazy=True, prefetch_hot=True,
            new_instance=True, name_suffix="-hot",
        )
        rsys = Syscalls(kernel, procs[0])
        faults_before = kernel.mem.stats.pager_in
        for i in range(8):
            rsys.peek(entry.start + i * PAGE_SIZE, 4)
        # Hot pages were prefetched: no pager activity on first touch.
        assert kernel.mem.stats.pager_in == faults_before
        assert metrics.pages_installed >= 8


class TestScaleOut:
    def test_many_instances_from_one_image(self, world, sls, kernel):
        _, _, entry, _, image = world
        pids = set()
        for i in range(5):
            procs, _ = sls.restore(
                image, backend_name="memory", new_instance=True,
                name_suffix=f"-i{i}",
            )
            pids.add(procs[0].pid)
            rsys = Syscalls(kernel, procs[0])
            assert rsys.peek(entry.start, 9) == b"content-0"
        assert len(pids) == 5

    def test_instances_isolated_from_each_other(self, world, sls, kernel):
        _, _, entry, _, image = world
        a, _ = sls.restore(image, backend_name="memory",
                           new_instance=True, name_suffix="-a")
        b, _ = sls.restore(image, backend_name="memory",
                           new_instance=True, name_suffix="-b")
        Syscalls(kernel, a[0]).poke(entry.start, b"AAAA")
        assert Syscalls(kernel, b[0]).peek(entry.start, 9) == b"content-0"
