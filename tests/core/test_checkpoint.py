"""Tests for the orchestrator: barriers, full/incremental checkpoints."""

import pytest

from repro.core.backends import MemoryBackend, make_disk_backend
from repro.core.orchestrator import SLS
from repro.errors import BackendError, CheckpointError
from repro.hw.nvme import NvmeDevice
from repro.posix.kernel import Kernel
from repro.posix.process import ProcessState
from repro.posix.syscalls import Syscalls
from repro.units import GIB, MIB, MSEC, PAGE_SIZE


@pytest.fixture
def kernel():
    return Kernel(memory_bytes=8 * GIB)


@pytest.fixture
def sls(kernel):
    return SLS(kernel)


@pytest.fixture
def world(kernel, sls):
    proc = kernel.spawn("app")
    sys = Syscalls(kernel, proc)
    entry = sys.mmap(2 * MIB, name="heap")
    sys.populate(entry.start, 2 * MIB, fill_fn=lambda i: b"pg%d" % i)
    group = sls.persist(proc, name="app")
    group.attach(make_disk_backend(kernel, NvmeDevice(kernel.clock)))
    return proc, sys, entry, group


class TestPersist:
    def test_persist_process_tree(self, kernel, sls):
        proc = kernel.spawn("app")
        group = sls.persist(proc, name="app")
        assert group.member_pids() == {proc.pid}
        assert sls.group_of(proc) is group

    def test_persist_container(self, kernel, sls):
        box = kernel.create_container("jail")
        a = kernel.spawn("a", container=box)
        b = kernel.spawn("b", container=box)
        group = sls.persist(box)
        assert group.member_pids() == {a.pid, b.pid}

    def test_children_join_group_automatically(self, kernel, sls):
        proc = kernel.spawn("app")
        group = sls.persist(proc)
        child = kernel.fork(proc)
        assert child.pid in group.member_pids()

    def test_persist_invalid_target(self, sls):
        from repro.errors import NotPersisted

        with pytest.raises(NotPersisted):
            sls.persist("not-a-process")

    def test_unpersist(self, kernel, sls):
        proc = kernel.spawn("app")
        group = sls.persist(proc)
        sls.unpersist(group)
        assert sls.group_of(proc) is None

    def test_persist_host_excludes_containers(self, kernel, sls):
        """"The host and each container have their own persistence
        group." — host processes and jailed processes separate."""
        host_daemon = kernel.spawn("syslogd")
        box = kernel.create_container("jail")
        inmate = kernel.spawn("service", container=box)
        host_group = sls.persist_host()
        jail_group = sls.persist(box, name="jail")
        assert host_daemon.pid in host_group.member_pids()
        assert inmate.pid not in host_group.member_pids()
        assert inmate.pid in jail_group.member_pids()
        # Idempotent.
        assert sls.persist_host() is host_group


class TestCheckpointBarrier:
    def test_requires_backend(self, kernel, sls):
        proc = kernel.spawn("app")
        group = sls.persist(proc)
        with pytest.raises(BackendError):
            sls.checkpoint(group)

    def test_requires_live_processes(self, kernel, sls, disk_backend):
        proc = kernel.spawn("app")
        group = sls.persist(proc)
        group.attach(disk_backend)
        kernel.exit(proc)
        with pytest.raises(CheckpointError):
            sls.checkpoint(group)

    def test_processes_resumed_after_checkpoint(self, world, sls):
        proc, _, _, group = world
        sls.checkpoint(group)
        assert proc.state is ProcessState.ALIVE

    def test_first_checkpoint_is_full(self, world, sls):
        _, _, _, group = world
        image = sls.checkpoint(group)
        assert not image.incremental
        assert image.metrics.pages_captured >= 512

    def test_second_checkpoint_is_incremental(self, world, sls):
        _, sys, entry, group = world
        sls.checkpoint(group)
        sys.poke(entry.start, b"dirty")
        image = sls.checkpoint(group)
        assert image.incremental
        assert image.metrics.pages_captured == 1

    def test_forced_full(self, world, sls):
        _, _, _, group = world
        sls.checkpoint(group)
        image = sls.checkpoint(group, full=True)
        assert not image.incremental

    def test_stop_time_is_metadata_plus_data(self, world, sls):
        _, _, _, group = world
        metrics = sls.checkpoint(group).metrics
        assert metrics.stop_time_ns >= (
            metrics.metadata_copy_ns + metrics.data_copy_ns
        )
        # The pause/resume overhead is small.
        slack = metrics.stop_time_ns - metrics.metadata_copy_ns - metrics.data_copy_ns
        assert slack < 50_000

    def test_incremental_metadata_cost_similar(self, world, sls):
        _, sys, entry, group = world
        full = sls.checkpoint(group).metrics
        sys.poke(entry.start, b"x")
        incr = sls.checkpoint(group).metrics
        assert incr.metadata_copy_ns < full.metadata_copy_ns
        assert incr.metadata_copy_ns > 0.7 * full.metadata_copy_ns

    def test_incremental_data_copy_much_cheaper(self, world, sls):
        _, sys, entry, group = world
        full = sls.checkpoint(group).metrics
        for i in range(51):  # ~10% of 512 pages
            sys.poke(entry.start + i * PAGE_SIZE, b"dirty")
        incr = sls.checkpoint(group).metrics
        assert incr.data_copy_ns < full.data_copy_ns / 5


class TestAsyncFlush:
    def test_image_not_durable_immediately(self, world, sls):
        _, _, _, group = world
        image = sls.checkpoint(group)
        assert not image.durable

    def test_barrier_waits_for_durability(self, world, sls, kernel):
        _, _, _, group = world
        image = sls.checkpoint(group)
        sls.barrier(group)
        assert image.durable
        assert image.metrics.durable_at_ns >= image.metrics.started_at_ns

    def test_flush_lag_positive_for_disk(self, world, sls):
        _, _, _, group = world
        image = sls.checkpoint(group)
        sls.barrier(group)
        assert image.metrics.flush_lag_ns > 0

    def test_memory_backend_durable_instantly(self, kernel, sls):
        proc = kernel.spawn("app")
        sys = Syscalls(kernel, proc)
        entry = sys.mmap(64 * 1024)
        sys.poke(entry.start, b"x")
        group = sls.persist(proc)
        group.attach(MemoryBackend("memory"))
        image = sls.checkpoint(group)
        assert image.durable

    def test_multi_backend_needs_all(self, world, sls, kernel):
        _, _, _, group = world
        group.attach(MemoryBackend("memory"))
        image = sls.checkpoint(group)
        assert "memory" in image.durable_on
        assert not image.durable  # disk still flushing
        sls.barrier(group)
        assert image.durable


class TestHistoryRetention:
    def test_history_accumulates(self, world, sls):
        _, sys, entry, group = world
        for i in range(5):
            sys.poke(entry.start, b"gen%d" % i)
            sls.checkpoint(group)
        assert len(group.images) == 5

    def test_retention_prunes_whole_chains(self, world, sls):
        _, sys, entry, group = world
        group.retention = 3
        store = group.store_backends()[0].store
        for i in range(6):
            sys.poke(entry.start, b"gen%d" % i)
            sls.checkpoint(group)
        # Chain-aware pruning: exceeding retention forces a
        # consolidating full checkpoint (#5), then drops the old chain
        # (#1-#4) at once: 6 checkpoints -> [full#5, incr#6].
        assert len(group.images) == 2
        assert not group.images[0].incremental
        assert store.stats.snapshots_deleted == 4

    def test_pruning_never_strands_incrementals(self, world, sls):
        """Every retained image keeps its full ancestor: reboot-safe."""
        _, sys, entry, group = world
        group.retention = 3
        for i in range(10):
            sys.poke(entry.start, b"gen%d" % i)
            sls.checkpoint(group)
        assert not group.images[0].incremental

    def test_pruned_history_leaves_restorable_images(self, world, sls, kernel):
        _, sys, entry, group = world
        group.retention = 2
        for i in range(5):
            sys.poke(entry.start, b"gen%d" % i)
            sls.checkpoint(group)
        sls.barrier(group)
        procs, _ = sls.restore(
            group.latest_image, new_instance=True, name_suffix="-r"
        )
        got = Syscalls(kernel, procs[0]).peek(entry.start, 4)
        assert got == b"gen4"


class TestPeriodicCheckpointing:
    def test_auto_checkpoint_at_period(self, kernel, sls, disk_backend):
        proc = kernel.spawn("app")
        sys = Syscalls(kernel, proc)
        entry = sys.mmap(64 * 1024)
        sys.poke(entry.start, b"x")
        group = sls.persist(proc, period_ns=10 * MSEC, auto_checkpoint=True)
        group.attach(disk_backend)
        kernel.run_for(105 * MSEC)
        # ~10 ticks in 105 ms ("persisted 100x per second").
        assert 8 <= group.stats.checkpoints_taken <= 11

    def test_stop_periodic(self, kernel, sls, disk_backend):
        proc = kernel.spawn("app")
        Syscalls(kernel, proc).mmap(64 * 1024)
        group = sls.persist(proc, period_ns=10 * MSEC, auto_checkpoint=True)
        group.attach(disk_backend)
        kernel.run_for(25 * MSEC)
        taken = group.stats.checkpoints_taken
        sls.stop_periodic(group)
        kernel.run_for(50 * MSEC)
        assert group.stats.checkpoints_taken == taken


class TestMctlExclusion:
    def test_excluded_region_not_captured(self, kernel, sls, disk_backend):
        from repro.core.api import AuroraApi

        proc = kernel.spawn("app")
        sys = Syscalls(kernel, proc)
        keep = sys.mmap(8 * PAGE_SIZE, name="keep")
        scratch = sys.mmap(8 * PAGE_SIZE, name="scratch")
        sys.populate(keep.start, 8 * PAGE_SIZE, fill=b"k")
        sys.populate(scratch.start, 8 * PAGE_SIZE, fill=b"s")
        group = sls.persist(proc)
        group.attach(disk_backend)
        api = AuroraApi(sls, proc)
        api.sls_mctl(scratch.start, 8 * PAGE_SIZE, include=False)
        image = sls.checkpoint(group)
        assert image.metrics.pages_captured == 8
