"""Tests for rollback and the libsls API (Table 2)."""

import pytest

from repro.core.api import AuroraApi
from repro.core.backends import MemoryBackend, make_disk_backend
from repro.core.orchestrator import SLS
from repro.core.rollback import ROLLBACK_SIGNAL, rollback
from repro.errors import NotPersisted, RollbackError, SlsError
from repro.hw.nvme import NvmeDevice
from repro.posix.kernel import Kernel
from repro.posix.syscalls import Syscalls
from repro.units import GIB, KIB, PAGE_SIZE


@pytest.fixture
def kernel():
    return Kernel(memory_bytes=4 * GIB)


@pytest.fixture
def sls(kernel):
    return SLS(kernel)


@pytest.fixture
def world(kernel, sls):
    proc = kernel.spawn("app")
    sys = Syscalls(kernel, proc)
    entry = sys.mmap(64 * KIB, name="heap")
    sys.populate(entry.start, 64 * KIB, fill=b"v1")
    group = sls.persist(proc, name="app")
    group.attach(make_disk_backend(kernel, NvmeDevice(kernel.clock)))
    group.attach(MemoryBackend("memory"))
    return proc, sys, entry, group


class TestRollback:
    def test_rollback_restores_memory(self, world, sls, kernel):
        proc, sys, entry, group = world
        sls.checkpoint(group)
        sys.poke(entry.start, b"MUTATED")
        procs, _ = rollback(sls, group)
        rsys = Syscalls(kernel, procs[0])
        assert rsys.peek(entry.start, 2) == b"v1"

    def test_rollback_preserves_pid(self, world, sls):
        proc, sys, entry, group = world
        sls.checkpoint(group)
        procs, _ = rollback(sls, group)
        assert procs[0].pid == proc.pid

    def test_rollback_reroots_group(self, world, sls):
        proc, sys, entry, group = world
        sls.checkpoint(group)
        procs, _ = rollback(sls, group)
        assert group.root is procs[0]
        assert group.member_pids() == {procs[0].pid}

    def test_rollback_notifies_with_signal(self, world, sls):
        _, _, _, group = world
        sls.checkpoint(group)
        procs, _ = rollback(sls, group)
        assert ROLLBACK_SIGNAL in procs[0].signals.pending

    def test_rollback_notify_optional(self, world, sls):
        _, _, _, group = world
        sls.checkpoint(group)
        procs, _ = rollback(sls, group, notify=False)
        assert ROLLBACK_SIGNAL not in procs[0].signals.pending

    def test_rollback_without_checkpoint_rejected(self, world, sls):
        _, _, _, group = world
        with pytest.raises(RollbackError):
            rollback(sls, group)

    def test_rollback_to_older_image(self, world, sls, kernel):
        _, sys, entry, group = world
        first = sls.checkpoint(group)
        sys.poke(entry.start, b"v2")
        sls.checkpoint(group)
        procs, _ = rollback(sls, group, image=first)
        assert Syscalls(kernel, procs[0]).peek(entry.start, 2) == b"v1"

    def test_repeated_rollbacks(self, world, sls, kernel):
        _, sys, entry, group = world
        sls.checkpoint(group)
        for i in range(3):
            procs, _ = rollback(sls, group)
            rsys = Syscalls(kernel, procs[0])
            assert rsys.peek(entry.start, 2) == b"v1"
            rsys.poke(entry.start, b"dirty-%d" % i)
        assert group.stats.rollbacks == 3


class TestAuroraApi:
    def test_requires_persistence(self, kernel, sls):
        loner = kernel.spawn("loner")
        api = AuroraApi(sls, loner)
        with pytest.raises(NotPersisted):
            api.sls_checkpoint()

    def test_sls_checkpoint_and_restore(self, world, sls, kernel):
        proc, sys, entry, group = world
        api = AuroraApi(sls, proc)
        api.sls_checkpoint(name="manual")
        sys.poke(entry.start, b"XX")
        procs, _ = api.sls_restore(
            name="manual", new_instance=True, name_suffix="-r"
        )
        assert Syscalls(kernel, procs[0]).peek(entry.start, 2) == b"v1"

    def test_sls_restore_unknown_name(self, world, sls):
        proc, _, _, group = world
        api = AuroraApi(sls, proc)
        with pytest.raises(SlsError):
            api.sls_restore(name="ghost")

    def test_sls_rollback(self, world, sls, kernel):
        proc, sys, entry, group = world
        api = AuroraApi(sls, proc)
        api.sls_checkpoint()
        sys.poke(entry.start, b"ZZ")
        procs, _ = api.sls_rollback()
        assert Syscalls(kernel, procs[0]).peek(entry.start, 2) == b"v1"

    def test_sls_barrier_returns_durable_time(self, world, sls, kernel):
        proc, _, _, group = world
        api = AuroraApi(sls, proc)
        image = api.sls_checkpoint()
        when = api.sls_barrier()
        assert image.durable
        assert when == kernel.clock.now

    def test_sls_ntflush_appends_and_replays(self, world, sls):
        proc, _, _, group = world
        api = AuroraApi(sls, proc)
        api.sls_ntflush(b"SET a 1")
        api.sls_ntflush(b"SET b 2")
        replay = api.sls_log_replay()
        assert [p for _s, p in replay] == [b"SET a 1", b"SET b 2"]

    def test_sls_ntflush_requires_store_backend(self, kernel, sls):
        proc = kernel.spawn("memonly")
        Syscalls(kernel, proc).mmap(64 * KIB)
        group = sls.persist(proc)
        group.attach(MemoryBackend("m"))
        api = AuroraApi(sls, proc)
        with pytest.raises(SlsError):
            api.sls_ntflush(b"x")

    def test_sls_log_truncate(self, world, sls):
        proc, *_ = world
        api = AuroraApi(sls, proc)
        api.sls_ntflush(b"one")
        seq = api.sls_ntflush(b"two").seq
        api.sls_log_truncate(seq)
        assert [p for _s, p in api.sls_log_replay()] == [b"two"]

    def test_sls_mctl_splits_entries(self, world, sls):
        proc, sys, entry, group = world
        api = AuroraApi(sls, proc)
        affected = api.sls_mctl(
            entry.start + 4 * PAGE_SIZE, 4 * PAGE_SIZE, include=False
        )
        assert affected == 1
        excluded = [e for e in proc.aspace.entries if e.sls_exclude]
        assert len(excluded) == 1
        assert excluded[0].start == entry.start + 4 * PAGE_SIZE

    def test_sls_mctl_hint_validation(self, world, sls):
        proc, _, entry, _ = world
        api = AuroraApi(sls, proc)
        with pytest.raises(SlsError):
            api.sls_mctl(entry.start, PAGE_SIZE, hint="sideways")

    def test_sls_mctl_unmapped_range(self, world, sls):
        proc, *_ = world
        api = AuroraApi(sls, proc)
        with pytest.raises(SlsError):
            api.sls_mctl(0xDEAD0000, PAGE_SIZE)
