"""Tests for send/recv, continuous replication, and live migration."""

import pytest

from repro.core.backends import RemoteBackend, make_disk_backend
from repro.core.orchestrator import SLS
from repro.core.remote import (
    MigrationReceiver,
    export_image,
    live_migrate,
    sls_send,
)
from repro.hw.netdev import NetworkLink
from repro.hw.nvme import NvmeDevice
from repro.objstore.record import decode
from repro.objstore.store import ObjectStore
from repro.posix.kernel import Kernel
from repro.posix.syscalls import Syscalls
from repro.units import GIB, KIB, PAGE_SIZE


@pytest.fixture
def hosts():
    """Two kernels sharing one clock, connected by 10 GbE."""
    src = Kernel(hostname="src", memory_bytes=4 * GIB)
    dst = Kernel(hostname="dst", memory_bytes=4 * GIB, clock=src.clock)
    src_sls, dst_sls = SLS(src), SLS(dst)
    link = NetworkLink(src.clock)
    src_ep, dst_ep = link.attach("src"), link.attach("dst")
    dst_store = ObjectStore(NvmeDevice(src.clock, name="dst-nvme"), mem=dst.mem)
    receiver = MigrationReceiver(dst_sls, dst_store, dst_ep)
    return src, dst, src_sls, dst_sls, src_ep, receiver


@pytest.fixture
def app(hosts):
    src, *_ , = hosts
    src_sls = hosts[2]
    proc = src.spawn("app")
    sys = Syscalls(src, proc)
    entry = sys.mmap(64 * KIB, name="heap")
    sys.populate(entry.start, 64 * KIB, fill_fn=lambda i: b"pg-%d" % i)
    group = src_sls.persist(proc, name="app")
    group.attach(make_disk_backend(src, NvmeDevice(src.clock)))
    return proc, sys, entry, group


class TestSendRecv:
    def test_image_transfers_and_restores(self, hosts, app):
        src, dst, src_sls, dst_sls, src_ep, receiver = hosts
        proc, sys, entry, group = app
        image = src_sls.checkpoint(group)
        src_sls.barrier(group)
        store = group.store_backends()[0].store
        sls_send(image, src_ep, "dst", store=store)
        ready = receiver.pump(wait=True)
        assert ready == ["app"]
        procs, metrics = receiver.restore("app")
        rsys = Syscalls(dst, procs[0])
        assert rsys.peek(entry.start + 3 * PAGE_SIZE, 4) == b"pg-3"
        assert metrics.objstore_read_ns > 0

    def test_export_is_self_contained(self, hosts, app):
        src, dst, src_sls, *_ = hosts
        proc, sys, entry, group = app
        image = src_sls.checkpoint(group)
        store = group.store_backends()[0].store
        blob = export_image(image, store)
        value = decode(blob)
        assert value["kind"] == "image"
        assert value["meta"]["procs"][0]["name"] == "app"
        assert len(value["pages"]) == image.metrics.pages_captured

    def test_recv_without_send_fails(self, hosts):
        from repro.errors import MigrationError

        *_, receiver = hosts
        with pytest.raises(MigrationError):
            receiver.restore("ghost")

    def test_send_refuses_a_damaged_store(self, hosts, app):
        # The DR gate (RECOVERY.md): shipping a checkpoint off a store
        # that does not fsck clean would replicate the damage to the
        # remote, so send refuses until fsck repairs the source —
        # unless explicitly overridden to salvage.
        from repro.errors import MigrationError

        src, dst, src_sls, dst_sls, src_ep, receiver = hosts
        proc, sys, entry, group = app
        image = src_sls.checkpoint(group)
        src_sls.barrier(group)
        store = group.store_backends()[0].store
        store.allocator.allocate(4096)  # leak: an orphan extent
        with pytest.raises(MigrationError, match="sls fsck --repair"):
            sls_send(image, src_ep, "dst", store=store)
        assert sls_send(image, src_ep, "dst", store=store,
                        verify_store=False) > 0

    def test_send_caches_clean_verdict_per_generation(self, hosts, app):
        # A clean fsck verdict is trusted until the next superblock
        # write: the first send walks the store, repeat sends of the
        # same generation skip the walk (and its device reads).
        src, dst, src_sls, dst_sls, src_ep, receiver = hosts
        proc, sys, entry, group = app
        image = src_sls.checkpoint(group)
        src_sls.barrier(group)
        store = group.store_backends()[0].store
        assert store._fsck_clean_generation is None
        sls_send(image, src_ep, "dst", store=store)
        assert store._fsck_clean_generation == store.volume.generation
        first_walk = src.clock.now
        sls_send(image, src_ep, "dst", store=store)
        resend = src.clock.now - first_walk
        # the cached resend must not pay for a second store walk; a
        # full walk reads every extent (tens of microseconds of
        # simulated device time), the transfer alone is far cheaper
        store._fsck_clean_generation = None
        sls_send(image, src_ep, "dst", store=store)
        rewalk = src.clock.now - first_walk - resend
        assert resend < rewalk

    def test_export_to_file_and_import(self, hosts, app, tmp_path):
        """'pipe a single checkpoint to a file to give to another
        user' — export, write to disk, import on another machine."""
        from repro.core.remote import export_image, import_image

        src, dst, src_sls, dst_sls, src_ep, receiver = hosts
        proc, sys, entry, group = app
        image = src_sls.checkpoint(group)
        src_sls.barrier(group)
        blob = export_image(image, group.store_backends()[0].store)
        path = tmp_path / "app.aurora"
        path.write_bytes(blob)

        imported = import_image(path.read_bytes(), receiver.store)
        procs, _ = dst_sls.restore(
            imported, backend_name="import", store=receiver.store,
            new_instance=True,
        )
        got = Syscalls(dst, procs[0]).peek(entry.start + PAGE_SIZE, 4)
        assert got == b"pg-1"

    def test_import_garbage_rejected(self, hosts):
        from repro.core.remote import import_image
        from repro.errors import MigrationError
        from repro.objstore.record import encode

        *_, receiver = hosts
        with pytest.raises(MigrationError):
            import_image(encode({"kind": "not-an-image"}), receiver.store)


class TestContinuousReplication:
    def test_remote_backend_ships_every_delta(self, hosts, app):
        src, dst, src_sls, dst_sls, src_ep, receiver = hosts
        proc, sys, entry, group = app
        remote = RemoteBackend("replica", src_ep, "dst")
        group.attach(remote)
        src_sls.checkpoint(group)
        sys.poke(entry.start, b"delta-1")
        src_sls.checkpoint(group)
        src_sls.barrier(group)
        receiver.pump(wait=True)
        assert remote.images_sent == 2
        # The receiver has assembled a complete image (full + delta).
        procs, _ = receiver.restore("app", new_instance=True)
        rsys = Syscalls(dst, procs[0])
        assert rsys.peek(entry.start, 7) == b"delta-1"
        assert rsys.peek(entry.start + PAGE_SIZE, 4) == b"pg-1"

    def test_replication_durability_is_arrival(self, hosts, app):
        src, dst, src_sls, dst_sls, src_ep, receiver = hosts
        proc, sys, entry, group = app
        group.detach("disk0")
        remote = RemoteBackend("replica", src_ep, "dst")
        group.attach(remote)
        image = src_sls.checkpoint(group)
        assert not image.durable
        src_sls.barrier(group)
        assert image.durable


class TestLiveMigration:
    def test_migrate_moves_application(self, hosts, app):
        src, dst, src_sls, dst_sls, src_ep, receiver = hosts
        proc, sys, entry, group = app
        old_pid = proc.pid
        restored, report = live_migrate(
            src_sls, group, receiver, src_ep, "dst", rounds=3
        )
        # Source torn down, target running the app.
        assert src.procs.get(old_pid) is None
        rsys = Syscalls(dst, restored[0])
        assert rsys.peek(entry.start + 2 * PAGE_SIZE, 4) == b"pg-2"
        assert report.rounds >= 2
        assert report.bytes_shipped > 0

    def test_migration_downtime_smaller_than_total(self, hosts, app):
        src, dst, src_sls, dst_sls, src_ep, receiver = hosts
        proc, sys, entry, group = app
        restored, report = live_migrate(
            src_sls, group, receiver, src_ep, "dst", rounds=3
        )
        assert 0 < report.downtime_ns < report.total_ns

    def test_migrated_app_keeps_running(self, hosts, app):
        src, dst, src_sls, dst_sls, src_ep, receiver = hosts
        proc, sys, entry, group = app
        restored, _ = live_migrate(
            src_sls, group, receiver, src_ep, "dst", rounds=2
        )
        rsys = Syscalls(dst, restored[0])
        rsys.poke(entry.start, b"alive-on-dst")
        assert rsys.peek(entry.start, 12) == b"alive-on-dst"
