"""Checkpoint pipelining: COW capture of N overlaps the flush of N-1."""

import pytest

from repro.core.backends import StoreBackend, make_disk_backend
from repro.core.orchestrator import SLS
from repro.hw.nvme import NvmeDevice
from repro.obs import names as obs_names
from repro.objstore.store import ObjectStore
from repro.posix.kernel import Kernel
from repro.posix.syscalls import Syscalls
from repro.sim.hermetic import hermetic_ids
from repro.units import GIB, MIB, PAGE_SIZE


@pytest.fixture
def kernel():
    return Kernel(memory_bytes=8 * GIB)


@pytest.fixture
def sls(kernel):
    return SLS(kernel)


def make_world(kernel, sls, batched=True, queue_depth=8):
    proc = kernel.spawn("app")
    sysc = Syscalls(kernel, proc)
    heap = sysc.mmap(2 * MIB, name="heap")
    sysc.populate(heap.start, 2 * MIB, fill_fn=lambda i: b"pipe%d" % i)
    group = sls.persist(proc, name="app")
    device = NvmeDevice(kernel.clock, queue_depth=queue_depth)
    backend = StoreBackend("disk0", ObjectStore(device, mem=kernel.mem),
                           batched=batched)
    backend.bind(kernel)
    group.attach(backend)
    return proc, sysc, heap, group, backend


class TestPipelining:
    def test_back_to_back_checkpoints_overlap(self, kernel, sls):
        proc, sysc, heap, group, backend = make_world(kernel, sls)
        sls.checkpoint(group, name="first")
        first = group.latest_image
        # The flush is asynchronous: the image is still in flight.
        assert not first.durable
        sysc.poke(heap.start, b"changed")
        sls.checkpoint(group, name="second")
        sls.barrier(group)
        counter = kernel.obs.registry.counter(
            obs_names.C_CKPT_PIPELINED, group="app"
        )
        assert counter.value == 1

    def test_overlap_histogram_records_flush_tail(self, kernel, sls):
        proc, sysc, heap, group, backend = make_world(kernel, sls)
        sls.checkpoint(group, name="first")
        sysc.poke(heap.start, b"changed")
        sls.checkpoint(group, name="second")
        sls.barrier(group)
        hist = kernel.obs.registry.histogram(
            obs_names.H_FLUSH_OVERLAP, group="app"
        )
        assert hist.count == 1
        assert hist.total > 0

    def test_barrier_between_checkpoints_prevents_overlap(self, kernel, sls):
        proc, sysc, heap, group, backend = make_world(kernel, sls)
        sls.checkpoint(group, name="first")
        sls.barrier(group)
        assert group.latest_image.durable
        sysc.poke(heap.start, b"changed")
        sls.checkpoint(group, name="second")
        sls.barrier(group)
        counter = kernel.obs.registry.counter(
            obs_names.C_CKPT_PIPELINED, group="app"
        )
        assert counter.value == 0

    def test_pipelined_span_attribute(self, kernel, sls):
        kernel.obs.tracer.enable()
        proc, sysc, heap, group, backend = make_world(kernel, sls)
        sls.checkpoint(group, name="first")
        sysc.poke(heap.start, b"changed")
        sls.checkpoint(group, name="second")
        sls.barrier(group)
        spans = [
            span
            for root in kernel.obs.tracer.roots()
            for span in root.walk()
            if span.name == obs_names.SPAN_CHECKPOINT
        ]
        assert [s.attrs["pipelined"] for s in spans] == [False, True]


# Checkpoint metadata varint-encodes world ids, so two otherwise
# identical worlds built at different points in one test process would
# flush payloads differing by a byte — enough to shift durability
# timestamps.  Same pinning as ``bench.run_suite``.
pinned_ids = hermetic_ids


class TestConcurrentGroups:
    """Many groups checkpointing concurrently on one machine: each
    group's superblock release barrier covers only *its own* store's
    pending writes, and one group's flush shape is unperturbed by a
    concurrent group flushing to a different store."""

    @staticmethod
    def _solo_durable_at():
        with pinned_ids():
            kernel = Kernel(memory_bytes=8 * GIB)
            sls = SLS(kernel)
            _p, _s, _h, group, _b = make_world(kernel, sls)
            image = sls.checkpoint(group, name="a")
            sls.barrier(group)
            # start-relative: absolute timestamps shift with whatever
            # else the machine did first, the flush shape must not
            return image.metrics.durable_at_ns - image.metrics.started_at_ns

    def test_overlapping_flushes_stay_independent(self):
        solo = self._solo_durable_at()
        with pinned_ids():
            kernel = Kernel(memory_bytes=8 * GIB)
            sls = SLS(kernel)
            self._check_concurrent(kernel, sls, solo)

    @staticmethod
    def _check_concurrent(kernel, sls, solo):
        _pa, _sa, _ha, group_a, _ba = make_world(kernel, sls)
        proc_b = kernel.spawn("app-b")
        sysc_b = Syscalls(kernel, proc_b)
        heap_b = sysc_b.mmap(2 * MIB, name="heap")
        sysc_b.populate(heap_b.start, 2 * MIB, fill_fn=lambda i: b"b%d" % i)
        group_b = sls.persist(proc_b, name="app-b")
        device_b = NvmeDevice(kernel.clock, queue_depth=8)
        backend_b = StoreBackend(
            "disk1", ObjectStore(device_b, mem=kernel.mem), batched=True
        )
        backend_b.bind(kernel)
        group_b.attach(backend_b)
        # A checkpoints first; B's flush window overlaps A's.
        image_a = sls.checkpoint(group_a, name="a")
        assert not image_a.durable
        image_b = sls.checkpoint(group_b, name="b")
        sls.barrier(group_a)
        sls.barrier(group_b)
        # A's start-to-durable interval matches a solo run exactly:
        # B's concurrent flush to its own device shifted nothing.
        elapsed = (image_a.metrics.durable_at_ns
                   - image_a.metrics.started_at_ns)
        assert elapsed == solo
        assert image_b.durable

    def test_release_barriers_cover_own_store_only(self, kernel, sls):
        _pa, _sa, _ha, group_a, backend_a = make_world(kernel, sls)
        proc_b = kernel.spawn("app-b")
        sysc_b = Syscalls(kernel, proc_b)
        heap_b = sysc_b.mmap(2 * MIB, name="heap")
        sysc_b.populate(heap_b.start, 2 * MIB, fill_fn=lambda i: b"b%d" % i)
        group_b = sls.persist(proc_b, name="app-b")
        device_b = NvmeDevice(kernel.clock, queue_depth=8)
        backend_b = StoreBackend(
            "disk1", ObjectStore(device_b, mem=kernel.mem), batched=True
        )
        backend_b.bind(kernel)
        group_b.attach(backend_b)
        image_a = sls.checkpoint(group_a, name="a")
        image_b = sls.checkpoint(group_b, name="b")
        # Each store's superblock is held back to its *own* device's
        # pending deadline — and no further: A's barrier returns as
        # soon as A's store is durable, while B (which started its
        # flush later) is still in flight.  If A's commit barrier
        # covered B's device too, this would deadlock-order into
        # waiting out B's flush as well.
        sls.barrier(group_a)
        assert image_a.durable
        assert not image_b.durable
        sls.barrier(group_b)
        assert image_b.durable

    def test_scheduler_runs_groups_concurrently(self, kernel, sls):
        # Two unthrottled scheduler submissions → both images in
        # flight at once, each group's barrier waits only for its own.
        _pa, _sa, _ha, group_a, _ba = make_world(kernel, sls)
        _pb, _sb, _hb, group_b, _bb = make_world(kernel, sls)
        ta = sls.scheduler.submit(group_a)
        tb = sls.scheduler.submit(group_b)
        assert ta.status == "inflight" or ta.image.durable
        assert tb.status == "inflight" or tb.image.durable
        sls.barrier(group_a)
        assert ta.status == "durable"
        sls.barrier(group_b)
        assert tb.status == "durable"


class TestFlushInfo:
    def test_batched_persist_amortizes_doorbells(self, kernel, sls):
        proc, sysc, heap, group, backend = make_world(kernel, sls, batched=True)
        image = sls.checkpoint(group, name="full")
        sls.barrier(group)
        info = image.flush_info["disk0"]
        pages = 2 * MIB // PAGE_SIZE
        assert info.records > pages  # pages + serialized kernel objects
        assert info.extents < info.records
        assert info.doorbells < info.records
        assert info.nbytes > 0
        assert info.submitted_at_ns >= 0

    def test_unbatched_persist_pays_per_record(self, kernel, sls):
        proc, sysc, heap, group, backend = make_world(
            kernel, sls, batched=False
        )
        image = sls.checkpoint(group, name="full")
        sls.barrier(group)
        info = image.flush_info["disk0"]
        # One command per record plus the superblock: no amortization.
        assert info.doorbells >= info.records

    def test_batched_beats_unbatched_on_flush_lag(self):
        def flush_lag(batched):
            kernel = Kernel(memory_bytes=8 * GIB)
            sls = SLS(kernel)
            _p, _s, _h, group, _b = make_world(kernel, sls, batched=batched)
            image = sls.checkpoint(group, name="race")
            sls.barrier(group)
            return image.metrics.flush_lag_ns

        assert flush_lag(True) < flush_lag(False)

    def test_disk_backend_defaults_to_batched(self, kernel):
        backend = make_disk_backend(kernel, NvmeDevice(kernel.clock))
        assert backend.batched
