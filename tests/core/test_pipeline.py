"""Checkpoint pipelining: COW capture of N overlaps the flush of N-1."""

import pytest

from repro.core.backends import StoreBackend, make_disk_backend
from repro.core.orchestrator import SLS
from repro.hw.nvme import NvmeDevice
from repro.obs import names as obs_names
from repro.objstore.store import ObjectStore
from repro.posix.kernel import Kernel
from repro.posix.syscalls import Syscalls
from repro.units import GIB, MIB, PAGE_SIZE


@pytest.fixture
def kernel():
    return Kernel(memory_bytes=8 * GIB)


@pytest.fixture
def sls(kernel):
    return SLS(kernel)


def make_world(kernel, sls, batched=True, queue_depth=8):
    proc = kernel.spawn("app")
    sysc = Syscalls(kernel, proc)
    heap = sysc.mmap(2 * MIB, name="heap")
    sysc.populate(heap.start, 2 * MIB, fill_fn=lambda i: b"pipe%d" % i)
    group = sls.persist(proc, name="app")
    device = NvmeDevice(kernel.clock, queue_depth=queue_depth)
    backend = StoreBackend("disk0", ObjectStore(device, mem=kernel.mem),
                           batched=batched)
    backend.bind(kernel)
    group.attach(backend)
    return proc, sysc, heap, group, backend


class TestPipelining:
    def test_back_to_back_checkpoints_overlap(self, kernel, sls):
        proc, sysc, heap, group, backend = make_world(kernel, sls)
        sls.checkpoint(group, name="first")
        first = group.latest_image
        # The flush is asynchronous: the image is still in flight.
        assert not first.durable
        sysc.poke(heap.start, b"changed")
        sls.checkpoint(group, name="second")
        sls.barrier(group)
        counter = kernel.obs.registry.counter(
            obs_names.C_CKPT_PIPELINED, group="app"
        )
        assert counter.value == 1

    def test_overlap_histogram_records_flush_tail(self, kernel, sls):
        proc, sysc, heap, group, backend = make_world(kernel, sls)
        sls.checkpoint(group, name="first")
        sysc.poke(heap.start, b"changed")
        sls.checkpoint(group, name="second")
        sls.barrier(group)
        hist = kernel.obs.registry.histogram(
            obs_names.H_FLUSH_OVERLAP, group="app"
        )
        assert hist.count == 1
        assert hist.total > 0

    def test_barrier_between_checkpoints_prevents_overlap(self, kernel, sls):
        proc, sysc, heap, group, backend = make_world(kernel, sls)
        sls.checkpoint(group, name="first")
        sls.barrier(group)
        assert group.latest_image.durable
        sysc.poke(heap.start, b"changed")
        sls.checkpoint(group, name="second")
        sls.barrier(group)
        counter = kernel.obs.registry.counter(
            obs_names.C_CKPT_PIPELINED, group="app"
        )
        assert counter.value == 0

    def test_pipelined_span_attribute(self, kernel, sls):
        kernel.obs.tracer.enable()
        proc, sysc, heap, group, backend = make_world(kernel, sls)
        sls.checkpoint(group, name="first")
        sysc.poke(heap.start, b"changed")
        sls.checkpoint(group, name="second")
        sls.barrier(group)
        spans = [
            span
            for root in kernel.obs.tracer.roots()
            for span in root.walk()
            if span.name == obs_names.SPAN_CHECKPOINT
        ]
        assert [s.attrs["pipelined"] for s in spans] == [False, True]


class TestFlushInfo:
    def test_batched_persist_amortizes_doorbells(self, kernel, sls):
        proc, sysc, heap, group, backend = make_world(kernel, sls, batched=True)
        image = sls.checkpoint(group, name="full")
        sls.barrier(group)
        info = image.flush_info["disk0"]
        pages = 2 * MIB // PAGE_SIZE
        assert info.records > pages  # pages + serialized kernel objects
        assert info.extents < info.records
        assert info.doorbells < info.records
        assert info.nbytes > 0
        assert info.submitted_at_ns >= 0

    def test_unbatched_persist_pays_per_record(self, kernel, sls):
        proc, sysc, heap, group, backend = make_world(
            kernel, sls, batched=False
        )
        image = sls.checkpoint(group, name="full")
        sls.barrier(group)
        info = image.flush_info["disk0"]
        # One command per record plus the superblock: no amortization.
        assert info.doorbells >= info.records

    def test_batched_beats_unbatched_on_flush_lag(self):
        def flush_lag(batched):
            kernel = Kernel(memory_bytes=8 * GIB)
            sls = SLS(kernel)
            _p, _s, _h, group, _b = make_world(kernel, sls, batched=batched)
            image = sls.checkpoint(group, name="race")
            sls.barrier(group)
            return image.metrics.flush_lag_ns

        assert flush_lag(True) < flush_lag(False)

    def test_disk_backend_defaults_to_batched(self, kernel):
        backend = make_disk_backend(kernel, NvmeDevice(kernel.clock))
        assert backend.batched
