"""The redesigned Table 2 surface: option objects + deprecation shims.

``sls_checkpoint``/``sls_restore`` take explicit keyword-only
parameters (or one ``CheckpointOptions``/``RestoreOptions`` value);
the historical positional and ``backend_name=`` shapes still work but
emit ``DeprecationWarning``.  CI runs this suite under
``-W error::DeprecationWarning``, so every shim test must route the
legacy call through ``pytest.warns``.
"""

import pytest

from repro.core.api import AuroraApi
from repro.core.backends import MemoryBackend, make_disk_backend
from repro.core.options import CheckpointOptions, RestoreOptions
from repro.core.orchestrator import SLS
from repro.errors import SlsError
from repro.hw.nvme import NvmeDevice
from repro.posix.kernel import Kernel
from repro.posix.syscalls import Syscalls
from repro.units import GIB, KIB


@pytest.fixture
def kernel():
    return Kernel(memory_bytes=4 * GIB)


@pytest.fixture
def sls(kernel):
    return SLS(kernel)


@pytest.fixture
def world(kernel, sls):
    proc = kernel.spawn("app")
    sys = Syscalls(kernel, proc)
    entry = sys.mmap(64 * KIB, name="heap")
    sys.populate(entry.start, 64 * KIB, fill=b"v1")
    group = sls.persist(proc, name="app")
    group.attach(make_disk_backend(kernel, NvmeDevice(kernel.clock)))
    group.attach(MemoryBackend("memory"))
    api = AuroraApi(sls, proc)
    return proc, sys, entry, group, api


class TestOptionObjects:
    def test_checkpoint_defaults(self):
        opts = CheckpointOptions()
        assert (opts.full, opts.name, opts.sync) == (None, None, False)

    def test_checkpoint_validates_types(self):
        with pytest.raises(SlsError):
            CheckpointOptions(full="yes")
        with pytest.raises(SlsError):
            CheckpointOptions(name=7)
        with pytest.raises(SlsError):
            CheckpointOptions(sync=None)

    def test_restore_defaults(self):
        opts = RestoreOptions()
        assert opts.backend is None and not opts.lazy
        assert not opts.new_instance and opts.prefetch_hot

    def test_restore_validates_types(self):
        with pytest.raises(SlsError):
            RestoreOptions(backend=3)
        with pytest.raises(SlsError):
            RestoreOptions(lazy="maybe")

    def test_name_suffix_requires_new_instance(self):
        with pytest.raises(SlsError):
            RestoreOptions(name_suffix="-clone")
        RestoreOptions(name_suffix="-clone", new_instance=True)

    def test_options_are_frozen(self):
        opts = RestoreOptions()
        with pytest.raises(AttributeError):
            opts.lazy = True

    def test_engine_kwargs_spelling(self):
        opts = RestoreOptions(backend="memory", lazy=True)
        kw = opts.engine_kwargs()
        assert kw["backend_name"] == "memory" and kw["lazy"] is True


class TestCheckpointApi:
    def test_keyword_form(self, world):
        *_, api = world
        image = api.sls_checkpoint(name="manual", full=True)
        assert image.name == "manual"

    def test_options_form(self, world):
        *_, api = world
        image = api.sls_checkpoint(options=CheckpointOptions(name="opt"))
        assert image.name == "opt"

    def test_options_and_keywords_conflict(self, world):
        *_, api = world
        with pytest.raises(SlsError):
            api.sls_checkpoint(name="x", options=CheckpointOptions())

    def test_sync_blocks_until_durable(self, world):
        _, _, _, group, api = world
        image = api.sls_checkpoint(sync=True)
        assert image.durable_on  # barrier ran before the call returned

    def test_positional_form_warns_but_works(self, world):
        *_, api = world
        with pytest.warns(DeprecationWarning, match="positional sls_checkpoint"):
            image = api.sls_checkpoint("legacy", True)
        assert image.name == "legacy"

    def test_too_many_positionals_rejected(self, world):
        *_, api = world
        with pytest.raises(TypeError):
            api.sls_checkpoint("a", True, "extra")


class TestRestoreApi:
    def test_keyword_form(self, world, kernel):
        proc, sys, entry, group, api = world
        api.sls_checkpoint(name="base")
        sys.poke(entry.start, b"MUTATED")
        procs, _ = api.sls_restore(
            name="base", new_instance=True, name_suffix="-clone"
        )
        rsys = Syscalls(kernel, procs[0])
        assert rsys.peek(entry.start, 2) == b"v1"
        assert procs[0].name.endswith("-clone")

    def test_options_form(self, world):
        *_, api = world
        api.sls_checkpoint(name="base")
        procs, _ = api.sls_restore(
            options=RestoreOptions(new_instance=True, lazy=True)
        )
        assert procs

    def test_options_and_keywords_conflict(self, world):
        *_, api = world
        api.sls_checkpoint()
        with pytest.raises(SlsError):
            api.sls_restore(lazy=True, options=RestoreOptions())

    def test_missing_image_rejected(self, world):
        *_, api = world
        with pytest.raises(SlsError, match="no image"):
            api.sls_restore(name="never-taken")

    def test_misspelled_option_fails_loudly(self, world):
        """The old ``**kwargs`` passthrough swallowed typos silently."""
        *_, api = world
        api.sls_checkpoint()
        with pytest.raises(TypeError, match="new_instnace"):
            api.sls_restore(new_instnace=True)

    def test_positional_lazy_warns_but_works(self, world):
        *_, api = world
        api.sls_checkpoint(name="base")
        with pytest.warns(DeprecationWarning, match="positional sls_restore"):
            procs, metrics = api.sls_restore("base", True)
        assert procs and metrics.lazy

    def test_backend_name_alias_warns_but_works(self, world):
        *_, api = world
        api.sls_checkpoint(sync=True)
        with pytest.warns(DeprecationWarning, match="backend_name"):
            procs, _ = api.sls_restore(backend_name="memory", new_instance=True)
        assert procs


class TestLogLocation:
    """A fresh ``AuroraApi`` handle must find the group's existing log.

    Regression: ``sls_log_replay``/``sls_log_truncate`` used to return
    ``[]``/``0`` whenever ``self._log`` was unset — exactly the state a
    handle is in right after a restore, which is when replay matters.
    """

    def test_replay_finds_existing_log(self, world, sls):
        proc, _, _, _, api = world
        api.sls_ntflush(b"record-1")
        api.sls_ntflush(b"record-2")
        fresh = AuroraApi(sls, proc)
        replayed = fresh.sls_log_replay()
        assert [data for _, data in replayed] == [b"record-1", b"record-2"]

    def test_truncate_finds_existing_log(self, world, sls):
        proc, _, _, _, api = world
        first = api.sls_ntflush(b"old")
        api.sls_ntflush(b"new")
        fresh = AuroraApi(sls, proc)
        assert fresh.sls_log_truncate(first.seq + 1) == 1
        assert [d for _, d in fresh.sls_log_replay()] == [b"new"]

    def test_ntflush_reuses_existing_log(self, world, sls):
        proc, _, _, _, api = world
        api.sls_ntflush(b"a")
        fresh = AuroraApi(sls, proc)
        fresh.sls_ntflush(b"b")
        assert fresh._log is api._log

    def test_replay_without_log_is_empty(self, world, sls):
        proc, *_ = world
        assert AuroraApi(sls, proc).sls_log_replay() == []
        assert AuroraApi(sls, proc).sls_log_truncate(5) == 0


class TestEntriesCovering:
    def test_public_spelling(self, world):
        proc, _, entry, _, _ = world
        hits = proc.aspace.entries_covering(entry.start, entry.end)
        assert entry in hits

    def test_split_is_opt_in(self, world):
        proc, _, entry, _, _ = world
        before = len(proc.aspace.entries)
        proc.aspace.entries_covering(entry.start + 4096, entry.end)
        assert len(proc.aspace.entries) == before

    def test_mctl_uses_it(self, world):
        proc, _, entry, _, api = world
        affected = api.sls_mctl(entry.start, 8192, include=False)
        assert affected >= 1
        assert any(e.sls_exclude for e in proc.aspace.entries)
