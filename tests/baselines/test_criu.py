"""Tests for the CRIU-style baseline checkpointer."""

import pytest

from repro.baselines.criu import CriuCheckpointer
from repro.core.backends import make_disk_backend
from repro.core.orchestrator import SLS
from repro.hw.nvme import NvmeDevice
from repro.posix.kernel import Kernel
from repro.posix.process import ProcessState
from repro.posix.syscalls import Syscalls
from repro.units import GIB, MIB


@pytest.fixture
def kernel():
    return Kernel(memory_bytes=8 * GIB)


@pytest.fixture
def app(kernel):
    proc = kernel.spawn("victim")
    sys = Syscalls(kernel, proc)
    entry = sys.mmap(16 * MIB, name="heap")
    sys.populate(entry.start, 16 * MIB, fill_fn=lambda i: b"pg%d" % i)
    return proc, sys, entry


class TestCriuDump:
    def test_dump_completes_and_resumes(self, kernel, app):
        proc, _, _ = app
        criu = CriuCheckpointer(kernel, NvmeDevice(kernel.clock, name="dump"))
        metrics = criu.dump(proc)
        assert proc.state is ProcessState.ALIVE
        assert metrics.pages_dumped >= 4096

    def test_stop_time_includes_copy_and_write(self, kernel, app):
        proc, _, _ = app
        criu = CriuCheckpointer(kernel, NvmeDevice(kernel.clock, name="dump"))
        metrics = criu.dump(proc)
        assert metrics.stop_time_ns >= (
            metrics.metadata_scrape_ns + metrics.memory_copy_ns + metrics.write_ns
        )
        # Synchronous full-dump write dominates: milliseconds, not µs.
        assert metrics.stop_time_ns > 5_000_000

    def test_stop_time_proportional_to_working_set(self, kernel):
        criu = CriuCheckpointer(kernel, NvmeDevice(kernel.clock, name="dump"))
        small = kernel.spawn("small")
        ssys = Syscalls(kernel, small)
        e = ssys.mmap(4 * MIB)
        ssys.populate(e.start, 4 * MIB, fill=b"x")
        big = kernel.spawn("big")
        bsys = Syscalls(kernel, big)
        e2 = bsys.mmap(32 * MIB)
        bsys.populate(e2.start, 32 * MIB, fill=b"y")
        small_ns = criu.dump(small).stop_time_ns
        big_ns = criu.dump(big).stop_time_ns
        assert big_ns > 4 * small_ns

    def test_every_dump_pays_full_cost(self, kernel, app):
        """No incremental tracking: dump twice, pay twice."""
        proc, _, _ = app
        criu = CriuCheckpointer(kernel, NvmeDevice(kernel.clock, name="dump"))
        first = criu.dump(proc)
        second = criu.dump(proc)  # nothing changed, still a full dump
        assert second.pages_dumped == first.pages_dumped
        assert second.stop_time_ns > 0.8 * first.stop_time_ns


class TestAuroraVsCriu:
    def test_aurora_stop_orders_of_magnitude_lower(self, kernel, app):
        """The paper's §2 claim, measured: CRIU's overheads are
        prohibitive for transparent persistence; Aurora's are not."""
        proc, sys, entry = app
        sls = SLS(kernel)
        group = sls.persist(proc, name="victim")
        group.attach(make_disk_backend(kernel, NvmeDevice(kernel.clock)))
        sls.checkpoint(group)  # warm up: full
        sys.poke(entry.start, b"dirty")
        aurora_ns = sls.checkpoint(group).metrics.stop_time_ns
        criu = CriuCheckpointer(kernel, NvmeDevice(kernel.clock, name="dump"))
        criu_ns = criu.dump(proc).stop_time_ns
        assert criu_ns > 50 * aurora_ns

    def test_criu_cannot_sustain_100hz(self, kernel):
        # Even a modest 32 MiB working set dumps slower than the 10 ms
        # period Aurora checkpoints at (2 GiB takes over a second).
        proc = kernel.spawn("victim32")
        sys = Syscalls(kernel, proc)
        entry = sys.mmap(32 * MIB)
        sys.populate(entry.start, 32 * MIB, fill_fn=lambda i: b"pg%d" % i)
        criu = CriuCheckpointer(kernel, NvmeDevice(kernel.clock, name="dump"))
        period_ns = 10_000_000  # 10 ms
        assert criu.dump(proc).stop_time_ns > period_ns
