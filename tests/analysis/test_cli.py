"""``sls lint`` end to end: exit codes, JSON output, the baseline
workflow, and the shipped tree staying clean modulo the baseline."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import Baseline
from repro.analysis.baseline import TODO_JUSTIFICATION
from repro.analysis.cli import _find_default_root, lint_tree
from repro.cli.main import main

REPO = Path(__file__).resolve().parent.parent.parent
SRC = REPO / "src"
FIXTURES = Path(__file__).resolve().parent / "fixtures"

BAD_WALLCLOCK = "import time\n\n\ndef stamp():\n    return time.time()\n"
GOOD_WALLCLOCK = "def stamp(clock):\n    return clock.now()\n"


# -- the shipped tree ------------------------------------------------------------


def test_shipped_tree_is_clean_modulo_baseline():
    baseline = Baseline.load(REPO / ".sls-lint-baseline.json")
    report = lint_tree(SRC, None, baseline)
    assert report.clean, "\n".join(f.render() for f in report.findings)
    assert report.stale_baseline == []
    assert len(report.rules_run) == 9


def test_cli_over_shipped_tree_exits_zero(capsys):
    assert main(["lint", str(SRC)]) == 0
    assert "tree is clean" in capsys.readouterr().out


def test_default_root_is_the_installed_src_tree():
    assert _find_default_root() == SRC


# -- flags and exit codes --------------------------------------------------------


def test_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for name in ("no-wallclock", "registry-drift", "crash-ordering",
                 "kwonly-api", "unit-suffix", "durability-order",
                 "failpoint-reachability", "obs-coverage",
                 "exception-safety"):
        assert name in out


def test_unknown_rule_is_usage_error(capsys):
    assert main(["lint", str(SRC), "--rule", "no-such-rule"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_missing_root_is_usage_error(tmp_path, capsys):
    assert main(["lint", str(tmp_path / "nowhere")]) == 2
    assert "no such tree" in capsys.readouterr().err


def test_findings_exit_one_and_json_report(tmp_path, capsys):
    tree = tmp_path / "tree"
    tree.mkdir()
    (tree / "bad.py").write_text(BAD_WALLCLOCK)
    out_path = tmp_path / "report.json"
    code = main(["lint", str(tree), "--format", "json",
                 "--json", str(out_path)])
    assert code == 1
    document = json.loads(capsys.readouterr().out)
    assert document == json.loads(out_path.read_text())
    assert document["clean"] is False
    assert document["modules_scanned"] == 1
    [finding] = document["findings"]
    assert finding["rule"] == "no-wallclock"
    assert finding["symbol"] == "stamp"


def test_rule_selection_scopes_the_run(tmp_path):
    tree = tmp_path / "tree"
    tree.mkdir()
    (tree / "bad.py").write_text(BAD_WALLCLOCK)
    assert main(["lint", str(tree), "--rule", "unit-suffix"]) == 0
    assert main(["lint", str(tree), "--rule", "no-wallclock"]) == 1


# -- the baseline workflow -------------------------------------------------------


def test_baseline_absorb_waive_and_go_stale(tmp_path, capsys):
    tree = tmp_path / "tree"
    tree.mkdir()
    (tree / "bad.py").write_text(BAD_WALLCLOCK)
    baseline_path = tree / ".sls-lint-baseline.json"

    # 1. absorb the finding; new entries get the TODO justification
    assert main(["lint", str(tree), "--update-baseline"]) == 0
    entries = json.loads(baseline_path.read_text())["entries"]
    assert [e["justification"] for e in entries] == [TODO_JUSTIFICATION]

    # 2. with the baseline in place the same tree lints clean
    capsys.readouterr()
    assert main(["lint", str(tree)]) == 0
    assert "1 baselined" in capsys.readouterr().out

    # 3. ...but only through the baseline, never silently
    assert main(["lint", str(tree), "--no-baseline"]) == 1

    # 4. fixing the code makes the entry stale, which blocks again
    (tree / "bad.py").write_text(GOOD_WALLCLOCK)
    capsys.readouterr()
    assert main(["lint", str(tree)]) == 1
    assert "stale baseline entry" in capsys.readouterr().out

    # 5. --update-baseline garbage-collects the stale entry
    assert main(["lint", str(tree), "--update-baseline"]) == 0
    assert json.loads(baseline_path.read_text())["entries"] == []
    assert main(["lint", str(tree)]) == 0


# -- usage errors ----------------------------------------------------------------


def test_malformed_baseline_is_usage_error(tmp_path, capsys):
    tree = tmp_path / "tree"
    tree.mkdir()
    (tree / "ok.py").write_text(GOOD_WALLCLOCK)
    (tree / ".sls-lint-baseline.json").write_text("{not json")
    assert main(["lint", str(tree)]) == 2
    assert "malformed baseline" in capsys.readouterr().err


def test_baseline_missing_fingerprint_is_usage_error(tmp_path, capsys):
    tree = tmp_path / "tree"
    tree.mkdir()
    (tree / "ok.py").write_text(GOOD_WALLCLOCK)
    (tree / ".sls-lint-baseline.json").write_text(
        json.dumps({"entries": [{"rule": "no-wallclock"}]})
    )
    assert main(["lint", str(tree)]) == 2
    assert "malformed baseline" in capsys.readouterr().err


def test_changed_outside_git_is_usage_error(tmp_path, capsys):
    tree = tmp_path / "tree"
    tree.mkdir()
    (tree / "ok.py").write_text(GOOD_WALLCLOCK)
    assert main(["lint", str(tree), "--changed"]) == 2
    assert "merge base" in capsys.readouterr().err


# -- fixtures are data, not code -------------------------------------------------


def test_fixture_corpora_are_never_imported():
    # the bad fixtures contain wall-clock reads, bare excepts, and
    # worse; the analyzer must only ever *parse* them
    import subprocess
    import sys

    lint_fixtures = (
        "import sys\n"
        "from repro.cli.main import main\n"
        f"main(['lint', {str(FIXTURES)!r}, '--no-baseline', '--no-cache'])\n"
        "bad = [name for name, mod in sys.modules.items()\n"
        "       if 'fixtures' in (getattr(mod, '__file__', '') or '')]\n"
        "print('IMPORTED:' + ','.join(bad))\n"
    )
    done = subprocess.run(
        [sys.executable, "-c", lint_fixtures],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert done.returncode == 0, done.stderr
    assert "IMPORTED:\n" in done.stdout


# -- the summary cache at the CLI ------------------------------------------------


def test_cache_file_appears_and_warm_run_agrees(tmp_path, capsys):
    tree = tmp_path / "tree"
    tree.mkdir()
    (tree / "bad.py").write_text(BAD_WALLCLOCK)
    cache_path = tree / ".sls-lint-cache.json"

    assert main(["lint", str(tree), "--no-baseline"]) == 1
    cold = capsys.readouterr().out
    assert cache_path.exists()

    assert main(["lint", str(tree), "--no-baseline"]) == 1
    warm = capsys.readouterr().out
    assert warm == cold  # byte-identical report off the warm cache


def test_no_cache_leaves_no_file(tmp_path):
    tree = tmp_path / "tree"
    tree.mkdir()
    (tree / "bad.py").write_text(BAD_WALLCLOCK)
    assert main(["lint", str(tree), "--no-baseline", "--no-cache"]) == 1
    assert not (tree / ".sls-lint-cache.json").exists()


# -- --changed -------------------------------------------------------------------


def _git(tree, *argv):
    import subprocess

    subprocess.run(
        ["git", "-c", "user.email=t@example.com", "-c", "user.name=t",
         *argv],
        cwd=tree, check=True, capture_output=True,
    )


def test_changed_reports_only_the_diffed_files(tmp_path, capsys):
    tree = tmp_path / "tree"
    tree.mkdir()
    (tree / "old.py").write_text(BAD_WALLCLOCK)
    _git(tree, "init", "-b", "main")
    _git(tree, "add", ".")
    _git(tree, "commit", "-m", "seed")
    (tree / "new.py").write_text(BAD_WALLCLOCK)

    # full run sees both files...
    code = main(["lint", str(tree), "--no-baseline", "--format", "json"])
    assert code == 1
    document = json.loads(capsys.readouterr().out)
    assert {f["path"] for f in document["findings"]} == {"old.py", "new.py"}

    # ...--changed reports only the untracked newcomer
    code = main(["lint", str(tree), "--no-baseline", "--changed",
                 "--format", "json"])
    assert code == 1
    document = json.loads(capsys.readouterr().out)
    assert {f["path"] for f in document["findings"]} == {"new.py"}


def test_changed_clean_when_diff_is_clean(tmp_path, capsys):
    tree = tmp_path / "tree"
    tree.mkdir()
    (tree / "old.py").write_text(BAD_WALLCLOCK)
    _git(tree, "init", "-b", "main")
    _git(tree, "add", ".")
    _git(tree, "commit", "-m", "seed")
    (tree / "new.py").write_text(GOOD_WALLCLOCK)

    assert main(["lint", str(tree), "--no-baseline", "--changed"]) == 0
    assert "tree is clean" in capsys.readouterr().out


# -- --update-baseline pruning ---------------------------------------------------


def test_update_baseline_reports_pruned_fingerprints(tmp_path, capsys):
    tree = tmp_path / "tree"
    tree.mkdir()
    (tree / "bad.py").write_text(BAD_WALLCLOCK)
    baseline_path = tree / ".sls-lint-baseline.json"

    assert main(["lint", str(tree), "--update-baseline"]) == 0
    [entry] = json.loads(baseline_path.read_text())["entries"]
    capsys.readouterr()

    (tree / "bad.py").write_text(GOOD_WALLCLOCK)
    assert main(["lint", str(tree), "--update-baseline"]) == 0
    out = capsys.readouterr().out
    assert f"pruned stale entry {entry['fingerprint']}" in out
    assert json.loads(baseline_path.read_text())["entries"] == []


def test_update_baseline_prunes_only_rules_that_ran(tmp_path):
    tree = tmp_path / "tree"
    tree.mkdir()
    (tree / "bad.py").write_text(BAD_WALLCLOCK)
    baseline_path = tree / ".sls-lint-baseline.json"

    assert main(["lint", str(tree), "--update-baseline"]) == 0
    [entry] = json.loads(baseline_path.read_text())["entries"]
    assert entry["rule"] == "no-wallclock"

    # a rule-scoped refresh must not GC the other rules' entries
    assert main(["lint", str(tree), "--update-baseline",
                 "--rule", "unit-suffix"]) == 0
    [kept] = json.loads(baseline_path.read_text())["entries"]
    assert kept["fingerprint"] == entry["fingerprint"]


# -- --graph ---------------------------------------------------------------------


def test_graph_json_from_the_cli(capsys):
    assert main(["lint", str(SRC), "--graph", "json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["schema"] == 1
    assert any(
        node["qual"] == "SLS.checkpoint" and node["effects"]
        for node in document["nodes"]
    )


def test_graph_dot_from_the_cli(capsys):
    assert main(["lint", str(SRC), "--graph", "dot"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("digraph sls_effects {")
    assert out.rstrip().endswith("}")
