"""``sls lint`` end to end: exit codes, JSON output, the baseline
workflow, and the shipped tree staying clean modulo the baseline."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import Baseline
from repro.analysis.baseline import TODO_JUSTIFICATION
from repro.analysis.cli import _find_default_root, lint_tree
from repro.cli.main import main

REPO = Path(__file__).resolve().parent.parent.parent
SRC = REPO / "src"
FIXTURES = Path(__file__).resolve().parent / "fixtures"

BAD_WALLCLOCK = "import time\n\n\ndef stamp():\n    return time.time()\n"
GOOD_WALLCLOCK = "def stamp(clock):\n    return clock.now()\n"


# -- the shipped tree ------------------------------------------------------------


def test_shipped_tree_is_clean_modulo_baseline():
    baseline = Baseline.load(REPO / ".sls-lint-baseline.json")
    report = lint_tree(SRC, None, baseline)
    assert report.clean, "\n".join(f.render() for f in report.findings)
    assert report.stale_baseline == []
    assert len(report.rules_run) == 5


def test_cli_over_shipped_tree_exits_zero(capsys):
    assert main(["lint", str(SRC)]) == 0
    assert "tree is clean" in capsys.readouterr().out


def test_default_root_is_the_installed_src_tree():
    assert _find_default_root() == SRC


# -- flags and exit codes --------------------------------------------------------


def test_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for name in ("no-wallclock", "registry-drift", "crash-ordering",
                 "kwonly-api", "unit-suffix"):
        assert name in out


def test_unknown_rule_is_usage_error(capsys):
    assert main(["lint", str(SRC), "--rule", "no-such-rule"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_missing_root_is_usage_error(tmp_path, capsys):
    assert main(["lint", str(tmp_path / "nowhere")]) == 2
    assert "no such tree" in capsys.readouterr().err


def test_findings_exit_one_and_json_report(tmp_path, capsys):
    tree = tmp_path / "tree"
    tree.mkdir()
    (tree / "bad.py").write_text(BAD_WALLCLOCK)
    out_path = tmp_path / "report.json"
    code = main(["lint", str(tree), "--format", "json",
                 "--json", str(out_path)])
    assert code == 1
    document = json.loads(capsys.readouterr().out)
    assert document == json.loads(out_path.read_text())
    assert document["clean"] is False
    assert document["modules_scanned"] == 1
    [finding] = document["findings"]
    assert finding["rule"] == "no-wallclock"
    assert finding["symbol"] == "stamp"


def test_rule_selection_scopes_the_run(tmp_path):
    tree = tmp_path / "tree"
    tree.mkdir()
    (tree / "bad.py").write_text(BAD_WALLCLOCK)
    assert main(["lint", str(tree), "--rule", "unit-suffix"]) == 0
    assert main(["lint", str(tree), "--rule", "no-wallclock"]) == 1


# -- the baseline workflow -------------------------------------------------------


def test_baseline_absorb_waive_and_go_stale(tmp_path, capsys):
    tree = tmp_path / "tree"
    tree.mkdir()
    (tree / "bad.py").write_text(BAD_WALLCLOCK)
    baseline_path = tree / ".sls-lint-baseline.json"

    # 1. absorb the finding; new entries get the TODO justification
    assert main(["lint", str(tree), "--update-baseline"]) == 0
    entries = json.loads(baseline_path.read_text())["entries"]
    assert [e["justification"] for e in entries] == [TODO_JUSTIFICATION]

    # 2. with the baseline in place the same tree lints clean
    capsys.readouterr()
    assert main(["lint", str(tree)]) == 0
    assert "1 baselined" in capsys.readouterr().out

    # 3. ...but only through the baseline, never silently
    assert main(["lint", str(tree), "--no-baseline"]) == 1

    # 4. fixing the code makes the entry stale, which blocks again
    (tree / "bad.py").write_text(GOOD_WALLCLOCK)
    capsys.readouterr()
    assert main(["lint", str(tree)]) == 1
    assert "stale baseline entry" in capsys.readouterr().out

    # 5. --update-baseline garbage-collects the stale entry
    assert main(["lint", str(tree), "--update-baseline"]) == 0
    assert json.loads(baseline_path.read_text())["entries"] == []
    assert main(["lint", str(tree)]) == 0
