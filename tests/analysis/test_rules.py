"""Each rule against its fixture corpus: the bad snippet must fail,
the good snippet must pass, with the exact findings pinned."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import (
    AnalyzerConfig,
    Finding,
    ProjectTree,
    make_rules,
    run_rules,
)

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def run_fixture(name, rule, config=None):
    tree = ProjectTree.load(FIXTURES / name, config=config or AnalyzerConfig())
    return run_rules(tree, make_rules([rule]))


def by_path(report, path):
    return [f for f in report.findings if f.path == path]


# -- no-wallclock ---------------------------------------------------------------


def test_wallclock_bad_fixture_fails():
    report = run_fixture("wallclock", "no-wallclock")
    bad = by_path(report, "bad.py")
    messages = "\n".join(f.message for f in bad)
    assert "time.monotonic" in messages          # member import, at the import
    assert "time.time" in messages               # aliased module attribute
    assert "datetime.datetime.now" in messages   # datetime constructor
    assert "unseeded randomness random.random" in messages
    assert "alias 'now'" in messages             # assignment alias, at the call
    assert all(f.path == "bad.py" for f in report.findings)


def test_wallclock_good_fixture_passes():
    report = run_fixture("wallclock", "no-wallclock")
    assert by_path(report, "good.py") == []


# -- registry-drift -------------------------------------------------------------


def registry_config():
    return AnalyzerConfig(
        obs_registry={
            "SPAN_CHECKPOINT": "sls.checkpoint",
            "COUNTER_UNUSED": "objstore.unused_total",
            "COUNTER_RESERVED": "objstore.reserved_total",
            "GAUGE_RATIO": "demo.ratio_permille",
        },
        fault_registry={
            "FP_DEMO_WRITE": "demo.write",
            "FP_DEMO_DELTA": "demo.write_delta",
        },
    )


def test_registry_drift_bad_fixture_fails():
    report = run_fixture("registry", "registry-drift", registry_config())
    bad = by_path(report, "repro/store_bad.py")
    messages = "\n".join(f.message for f in bad)
    assert "inline instrument name 'sls.checkpoint'" in messages
    assert "duplicates a catalogue name" in messages
    # inline gauge + failpoint literals (the codec instrumentation
    # shapes): caught at the instrument call, not just as copies
    assert "inline instrument name 'demo.ratio_permille'" in messages
    assert "inline instrument name 'demo.write_delta'" in messages


def test_registry_drift_reports_unreferenced_constant():
    report = run_fixture("registry", "registry-drift", registry_config())
    unref = [f for f in report.findings if "never referenced" in f.message]
    assert [f.symbol for f in unref] == ["COUNTER_UNUSED"]


def test_registry_drift_inline_suppression():
    report = run_fixture("registry", "registry-drift", registry_config())
    assert [f.symbol for f in report.inline_suppressed] == ["COUNTER_RESERVED"]


def test_registry_drift_good_fixture_passes():
    report = run_fixture("registry", "registry-drift", registry_config())
    assert by_path(report, "repro/store_good.py") == []


# -- crash-ordering -------------------------------------------------------------


def test_crash_ordering_bad_fixture_fails():
    report = run_fixture("crash", "crash-ordering")
    bad = by_path(report, "repro/objstore/bad.py")
    messages = "\n".join(f.message for f in bad)
    assert "superblock write reachable with batched records" in messages
    assert "no registered failpoint" in messages
    assert "bypasses the Volume layer" in messages
    assert "without a release_ns= barrier" in messages
    assert len(bad) == 5


def test_crash_ordering_flags_none_barrier():
    # release_ns=None is not a barrier: the parallel-flush shape must
    # pass the device's pending deadline, not a literal None.
    report = run_fixture("crash", "crash-ordering")
    bad = by_path(report, "repro/objstore/bad.py")
    none_barrier = [
        f for f in bad
        if "release_ns= barrier" in f.message
        and f.symbol.endswith("commit_parallel")
    ]
    assert len(none_barrier) == 1


def test_crash_ordering_good_fixture_passes():
    report = run_fixture("crash", "crash-ordering")
    assert by_path(report, "repro/objstore/good.py") == []


def test_crash_ordering_adapter_is_exempt():
    # block.py's raw device write is covered by the device-level
    # failpoints inside StorageDevice, not store-level ones.
    report = run_fixture("crash", "crash-ordering")
    assert by_path(report, "repro/objstore/block.py") == []


# -- kwonly-api -----------------------------------------------------------------


def test_kwonly_bad_fixture_fails():
    report = run_fixture("kwonly", "kwonly-api")
    bad = by_path(report, "repro/core/api.py")
    messages = "\n".join(f.message for f in bad)
    assert "flag parameter sync=True" in messages
    assert "'options' of restore() must be keyword-only" in messages
    assert "**kwargs" in messages
    assert len(bad) == 3


def test_kwonly_good_fixture_passes():
    # keyword-only flags, a legacy* shim, and a pure delegate all pass
    report = run_fixture("kwonly", "kwonly-api")
    assert by_path(report, "repro/core/orchestrator.py") == []


def test_kwonly_covers_apps_prefix():
    # repro/apps/ is in scope via api_prefixes, not api_modules
    report = run_fixture("kwonly", "kwonly-api")
    bad = by_path(report, "repro/apps/bad.py")
    messages = "\n".join(f.message for f in bad)
    assert "flag parameter lazy=True" in messages
    assert "'invoke_options' of invoke() must be keyword-only" in messages
    assert "**knobs" in messages
    assert len(bad) == 3


def test_kwonly_apps_good_fixture_passes():
    report = run_fixture("kwonly", "kwonly-api")
    assert by_path(report, "repro/apps/good.py") == []


# -- unit-suffix ----------------------------------------------------------------


def test_unit_suffix_bad_fixture_fails():
    report = run_fixture("units", "unit-suffix")
    bad = by_path(report, "bad.py")
    messages = "\n".join(f.message for f in bad)
    assert "magic literal 30000" in messages
    assert "magic literal 4096" in messages   # folded from 4 * 1024
    assert "assigned directly from size name 'chunk_bytes'" in messages
    assert len(bad) == 3


def test_unit_suffix_good_fixture_passes():
    # units products, identity literals, and calibration floats pass
    report = run_fixture("units", "unit-suffix")
    assert by_path(report, "good.py") == []


# -- engine ----------------------------------------------------------------------


def test_fingerprint_ignores_line_numbers():
    a = Finding(rule="r", path="p.py", line=3, col=0, message="m", symbol="f")
    b = Finding(rule="r", path="p.py", line=99, col=4, message="m", symbol="f")
    assert a.fingerprint == b.fingerprint
    c = Finding(rule="r", path="p.py", line=3, col=0, message="m2", symbol="f")
    assert a.fingerprint != c.fingerprint


def test_unknown_rule_name_rejected():
    with pytest.raises(ValueError, match="unknown rule"):
        make_rules(["no-such-rule"])
