"""Each rule against its fixture corpus: the bad snippet must fail,
the good snippet must pass, with the exact findings pinned."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import (
    AnalyzerConfig,
    Finding,
    ProjectTree,
    make_rules,
    run_rules,
)

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def run_fixture(name, rule, config=None):
    tree = ProjectTree.load(FIXTURES / name, config=config or AnalyzerConfig())
    return run_rules(tree, make_rules([rule]))


def by_path(report, path):
    return [f for f in report.findings if f.path == path]


# -- no-wallclock ---------------------------------------------------------------


def test_wallclock_bad_fixture_fails():
    report = run_fixture("wallclock", "no-wallclock")
    bad = by_path(report, "bad.py")
    messages = "\n".join(f.message for f in bad)
    assert "time.monotonic" in messages          # member import, at the import
    assert "time.time" in messages               # aliased module attribute
    assert "datetime.datetime.now" in messages   # datetime constructor
    assert "unseeded randomness random.random" in messages
    assert "alias 'now'" in messages             # assignment alias, at the call
    assert all(f.path == "bad.py" for f in report.findings)


def test_wallclock_good_fixture_passes():
    report = run_fixture("wallclock", "no-wallclock")
    assert by_path(report, "good.py") == []


# -- registry-drift -------------------------------------------------------------


def registry_config():
    return AnalyzerConfig(
        obs_registry={
            "SPAN_CHECKPOINT": "sls.checkpoint",
            "COUNTER_UNUSED": "objstore.unused_total",
            "COUNTER_RESERVED": "objstore.reserved_total",
            "GAUGE_RATIO": "demo.ratio_permille",
        },
        fault_registry={
            "FP_DEMO_WRITE": "demo.write",
            "FP_DEMO_DELTA": "demo.write_delta",
        },
    )


def test_registry_drift_bad_fixture_fails():
    report = run_fixture("registry", "registry-drift", registry_config())
    bad = by_path(report, "repro/store_bad.py")
    messages = "\n".join(f.message for f in bad)
    assert "inline instrument name 'sls.checkpoint'" in messages
    assert "duplicates a catalogue name" in messages
    # inline gauge + failpoint literals (the codec instrumentation
    # shapes): caught at the instrument call, not just as copies
    assert "inline instrument name 'demo.ratio_permille'" in messages
    assert "inline instrument name 'demo.write_delta'" in messages


def test_registry_drift_reports_unreferenced_constant():
    report = run_fixture("registry", "registry-drift", registry_config())
    unref = [f for f in report.findings if "never referenced" in f.message]
    assert [f.symbol for f in unref] == ["COUNTER_UNUSED"]


def test_registry_drift_inline_suppression():
    report = run_fixture("registry", "registry-drift", registry_config())
    assert [f.symbol for f in report.inline_suppressed] == ["COUNTER_RESERVED"]


def test_registry_drift_good_fixture_passes():
    report = run_fixture("registry", "registry-drift", registry_config())
    assert by_path(report, "repro/store_good.py") == []


# -- crash-ordering -------------------------------------------------------------


def test_crash_ordering_bad_fixture_fails():
    report = run_fixture("crash", "crash-ordering")
    bad = by_path(report, "repro/objstore/bad.py")
    messages = "\n".join(f.message for f in bad)
    assert "superblock write reachable with batched records" in messages
    assert "no registered failpoint" in messages
    assert "bypasses the Volume layer" in messages
    assert "without a release_ns= barrier" in messages
    assert len(bad) == 5


def test_crash_ordering_flags_none_barrier():
    # release_ns=None is not a barrier: the parallel-flush shape must
    # pass the device's pending deadline, not a literal None.
    report = run_fixture("crash", "crash-ordering")
    bad = by_path(report, "repro/objstore/bad.py")
    none_barrier = [
        f for f in bad
        if "release_ns= barrier" in f.message
        and f.symbol.endswith("commit_parallel")
    ]
    assert len(none_barrier) == 1


def test_crash_ordering_good_fixture_passes():
    report = run_fixture("crash", "crash-ordering")
    assert by_path(report, "repro/objstore/good.py") == []


def test_crash_ordering_adapter_is_exempt():
    # block.py's raw device write is covered by the device-level
    # failpoints inside StorageDevice, not store-level ones.
    report = run_fixture("crash", "crash-ordering")
    assert by_path(report, "repro/objstore/block.py") == []


# -- kwonly-api -----------------------------------------------------------------


def test_kwonly_bad_fixture_fails():
    report = run_fixture("kwonly", "kwonly-api")
    bad = by_path(report, "repro/core/api.py")
    messages = "\n".join(f.message for f in bad)
    assert "flag parameter sync=True" in messages
    assert "'options' of restore() must be keyword-only" in messages
    assert "**kwargs" in messages
    assert len(bad) == 3


def test_kwonly_good_fixture_passes():
    # keyword-only flags, a legacy* shim, and a pure delegate all pass
    report = run_fixture("kwonly", "kwonly-api")
    assert by_path(report, "repro/core/orchestrator.py") == []


def test_kwonly_covers_apps_prefix():
    # repro/apps/ is in scope via api_prefixes, not api_modules
    report = run_fixture("kwonly", "kwonly-api")
    bad = by_path(report, "repro/apps/bad.py")
    messages = "\n".join(f.message for f in bad)
    assert "flag parameter lazy=True" in messages
    assert "'invoke_options' of invoke() must be keyword-only" in messages
    assert "**knobs" in messages
    assert len(bad) == 3


def test_kwonly_apps_good_fixture_passes():
    report = run_fixture("kwonly", "kwonly-api")
    assert by_path(report, "repro/apps/good.py") == []


# -- unit-suffix ----------------------------------------------------------------


def test_unit_suffix_bad_fixture_fails():
    report = run_fixture("units", "unit-suffix")
    bad = by_path(report, "bad.py")
    messages = "\n".join(f.message for f in bad)
    assert "magic literal 30000" in messages
    assert "magic literal 4096" in messages   # folded from 4 * 1024
    assert "assigned directly from size name 'chunk_bytes'" in messages
    assert len(bad) == 3


def test_unit_suffix_good_fixture_passes():
    # units products, identity literals, and calibration floats pass
    report = run_fixture("units", "unit-suffix")
    assert by_path(report, "good.py") == []


# -- engine ----------------------------------------------------------------------


def test_fingerprint_ignores_line_numbers():
    a = Finding(rule="r", path="p.py", line=3, col=0, message="m", symbol="f")
    b = Finding(rule="r", path="p.py", line=99, col=4, message="m", symbol="f")
    assert a.fingerprint == b.fingerprint
    c = Finding(rule="r", path="p.py", line=3, col=0, message="m2", symbol="f")
    assert a.fingerprint != c.fingerprint


def test_unknown_rule_name_rejected():
    with pytest.raises(ValueError, match="unknown rule"):
        make_rules(["no-such-rule"])


# -- the effects fixture (shared by the four whole-program rules) ----------------


def effects_config():
    return AnalyzerConfig(
        obs_registry={
            "C_OPS": "fx.ops_total",
            "C_NEVER": "fx.never_total",
            "G_DEAD": "fx.dead_ratio",
            "H_UNDOC": "fx.undoc_ns",
        },
        fault_registry={
            "FP_COMMIT": "fx.commit",
            "FP_DEAD": "fx.dead",
            "FP_ORPHAN": "fx.orphan",
            "FP_OFF_SWEEP": "fx.off_sweep",
        },
        durability_roots=(
            "Store.commit",
            "Store.commit_media_first",
            "Store.commit_after_super",
            "Store.gone",
        ),
        sweep_entry="repro/sweep.py::run_sweep",
        sweep_sites=("fx.commit", "fx.off_sweep"),
    )


def run_effects_fixture(rule):
    return run_fixture("effects", rule, effects_config())


# -- durability-order -----------------------------------------------------------


def test_durability_good_root_passes():
    report = run_effects_fixture("durability-order")
    assert [f for f in report.findings if f.symbol == "Store.commit"] == []


def test_durability_media_before_fire_fails():
    report = run_effects_fixture("durability-order")
    [finding] = [f for f in report.findings
                 if f.symbol == "Store.commit_media_first"]
    assert "before any failpoint fires" in finding.message
    assert finding.path == "repro/store.py"


def test_durability_media_after_superblock_fails():
    report = run_effects_fixture("durability-order")
    [finding] = [f for f in report.findings
                 if f.symbol == "Store.commit_after_super"]
    assert "after the last SUPERBLOCK_WRITE" in finding.message


def test_durability_missing_root_is_a_finding():
    # renaming a configured root away must not silently disable it
    report = run_effects_fixture("durability-order")
    [finding] = [f for f in report.findings if f.symbol == "Store.gone"]
    assert finding.path == "<config>"
    assert "matches no function" in finding.message
    assert len(report.findings) == 3


# -- failpoint-reachability -----------------------------------------------------


def test_failpoint_live_swept_constant_passes():
    report = run_effects_fixture("failpoint-reachability")
    assert [f for f in report.findings if f.symbol == "FP_COMMIT"] == []


def test_failpoint_never_fired_fails():
    report = run_effects_fixture("failpoint-reachability")
    [finding] = [f for f in report.findings if f.symbol == "FP_DEAD"]
    assert "never fired" in finding.message
    assert finding.path == "repro/fault/names.py"
    assert finding.line > 0  # anchored at the constant definition


def test_failpoint_dead_code_fire_fails():
    report = run_effects_fixture("failpoint-reachability")
    [finding] = [f for f in report.findings if f.symbol == "FP_ORPHAN"]
    assert "unreachable from any public entry point" in finding.message


def test_failpoint_swept_but_off_sweep_fails():
    # fired from a live public method, but the sweep never gets there
    report = run_effects_fixture("failpoint-reachability")
    [finding] = [f for f in report.findings if f.symbol == "FP_OFF_SWEEP"]
    assert "no fire site reachable from repro/sweep.py::run_sweep" in (
        finding.message
    )
    assert len(report.findings) == 3


# -- obs-coverage ---------------------------------------------------------------


def test_obs_emitted_documented_metric_passes():
    report = run_effects_fixture("obs-coverage")
    assert [f for f in report.findings if f.symbol == "C_OPS"] == []


def test_obs_never_emitted_fails():
    report = run_effects_fixture("obs-coverage")
    [finding] = [f for f in report.findings if f.symbol == "C_NEVER"]
    assert "never emitted" in finding.message
    assert finding.path == "repro/obs/names.py"


def test_obs_dead_code_emit_fails():
    report = run_effects_fixture("obs-coverage")
    [finding] = [f for f in report.findings if f.symbol == "G_DEAD"]
    assert "unreachable from any public entry point" in finding.message


def test_obs_undocumented_metric_fails():
    report = run_effects_fixture("obs-coverage")
    [finding] = [f for f in report.findings if f.symbol == "H_UNDOC"]
    assert "not documented in OBSERVABILITY.md" in finding.message
    assert len(report.findings) == 3


# -- exception-safety -----------------------------------------------------------


def test_exception_safety_broad_swallow_of_callee_cut_fails():
    # the fire is two calls deep: proves the interprocedural summary
    report = run_effects_fixture("exception-safety")
    [finding] = [f for f in report.findings
                 if f.symbol == "Worker.bad_swallow"]
    assert "except Exception can swallow a PowerCut" in finding.message


def test_exception_safety_bare_except_fails():
    report = run_effects_fixture("exception-safety")
    [finding] = [f for f in report.findings if f.symbol == "Worker.bad_bare"]
    assert "bare except" in finding.message
    assert len(report.findings) == 2


def test_exception_safety_good_shapes_pass():
    # explicit PowerCut arm, re-raising handler, cut-free body
    report = run_effects_fixture("exception-safety")
    good = {"Worker.good_explicit", "Worker.good_reraise",
            "Worker.good_no_cut"}
    assert [f for f in report.findings if f.symbol in good] == []


def test_whole_program_rules_stay_quiet_off_repo_trees():
    # a tree without the catalogue modules is not this repo: the
    # whole-program promises are vacuous there, not violated
    for rule in ("durability-order", "failpoint-reachability",
                 "obs-coverage"):
        report = run_fixture("wallclock", rule, effects_config())
        assert report.findings == []
