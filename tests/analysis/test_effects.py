"""The effects engine itself: extraction, linking, fixpoint summaries,
durability linearization, graph export, and the no-reparse warm path.

The rule-level behavior (what the four graph rules *report*) is pinned
in test_rules.py over the same ``effects`` fixture; this file pins the
engine facts those rules consume.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import AnalyzerConfig, ProjectTree
from repro.analysis.cache import SummaryCache
from repro.analysis.effects import (
    CLOCK_ADVANCE,
    EffectAnalysis,
    FAILPOINT_FIRE,
    MEDIA_WRITE,
    OBS_EMIT,
    SUPERBLOCK_WRITE,
)

FIXTURE = Path(__file__).resolve().parent / "fixtures" / "effects"


def fixture_config():
    return AnalyzerConfig(
        obs_registry={"C_OPS": "fx.ops_total"},
        fault_registry={"FP_COMMIT": "fx.commit"},
        sweep_entry="repro/sweep.py::run_sweep",
        sweep_sites=("fx.commit",),
    )


def build(cache=None):
    tree = ProjectTree.load(FIXTURE, config=fixture_config(), cache=cache)
    return tree, tree.effects()


# -- extraction and linking ------------------------------------------------------


def test_intrinsic_effects_of_the_commit_path():
    _tree, analysis = build()
    [commit] = [n for n in analysis.nodes
                if analysis.nodes[n].qual == "Store.commit"]
    own = {atom for _l, _c, atom, _d
           in analysis.nodes[commit].record["effects"]}
    assert {MEDIA_WRITE, SUPERBLOCK_WRITE, FAILPOINT_FIRE, OBS_EMIT} <= own
    assert CLOCK_ADVANCE not in own


def test_typed_local_call_is_linked():
    # run_sweep's `store = Store(...)` types the receiver, so the
    # method calls resolve without any name-based guessing
    _tree, analysis = build()
    [sweep] = analysis.entry_ids("repro/sweep.py::run_sweep")
    callee_quals = {
        analysis.nodes[c].qual for c in analysis.nodes[sweep].callees
    }
    assert "Store.commit" in callee_quals
    assert "Store.__init__" in callee_quals


def test_fixpoint_propagates_effects_to_the_entry():
    # the sweep entry touches no device itself; everything below it
    # flows up through the SCC-ordered fixpoint
    _tree, analysis = build()
    [sweep] = analysis.entry_ids("repro/sweep.py::run_sweep")
    summary = analysis.summaries[sweep]
    assert {MEDIA_WRITE, SUPERBLOCK_WRITE, FAILPOINT_FIRE} <= summary


def test_fire_and_emit_sites_are_indexed():
    _tree, analysis = build()
    assert "FP_COMMIT" in analysis.fire_sites
    assert "C_OPS" in analysis.emit_sites
    quals = {analysis.nodes[s].qual
             for s in analysis.fire_sites["FP_COMMIT"]}
    assert "Store.commit" in quals


def test_private_uncalled_helper_is_not_public_reachable():
    _tree, analysis = build()
    reach = analysis.reachable_from(analysis.public_roots())
    [orphan] = [n for n in analysis.nodes
                if analysis.nodes[n].qual == "Store._orphan"]
    assert orphan not in reach


# -- durability linearization ----------------------------------------------------


def test_root_sequence_orders_the_good_commit():
    _tree, analysis = build()
    [commit] = analysis.roots_matching(["Store.commit"])
    atoms = [atom for _l, _c, atom, _d in analysis.root_sequence(commit)]
    assert atoms == [FAILPOINT_FIRE, MEDIA_WRITE, SUPERBLOCK_WRITE]


def test_root_sequence_keeps_source_order_for_the_bad_commit():
    _tree, analysis = build()
    [root] = analysis.roots_matching(["Store.commit_after_super"])
    atoms = [atom for _l, _c, atom, _d in analysis.root_sequence(root)]
    assert atoms == [FAILPOINT_FIRE, SUPERBLOCK_WRITE, MEDIA_WRITE]


# -- graph export ----------------------------------------------------------------


def test_graph_json_is_schema_one_and_marks_reachability():
    _tree, analysis = build()
    document = analysis.to_json()
    assert document["schema"] == 1
    json.dumps(document)  # must be serializable as-is
    nodes = {node["id"]: node for node in document["nodes"]}
    [commit] = analysis.roots_matching(["Store.commit"])
    assert nodes[commit]["reachable_from_sweep"] is True
    assert nodes[commit]["reachable_from_public"] is True
    assert MEDIA_WRITE in nodes[commit]["effects"]
    [orphan] = [n for n in nodes if nodes[n]["qual"] == "Store._orphan"]
    assert nodes[orphan]["reachable_from_sweep"] is False
    assert [commit, [c for c in analysis.nodes[commit].callees][0]] in (
        document["edges"]
    ) or any(edge[0] == commit for edge in document["edges"])


def test_graph_dot_renders_the_effectful_subgraph():
    _tree, analysis = build()
    dot = analysis.to_dot()
    assert dot.startswith("digraph sls_effects {")
    assert "Store.commit" in dot
    # effect-free helpers stay out of the picture
    assert "good_no_cut" not in dot


# -- the warm path ---------------------------------------------------------------


def test_warm_build_serves_facts_without_reparsing(tmp_path):
    cache_path = tmp_path / "cache.json"
    cold = SummaryCache(cache_path)
    tree, _analysis = build(cache=cold)
    assert cold.misses > 0
    cold.save()

    warm = SummaryCache.load(cache_path)
    tree, analysis = build(cache=warm)
    assert warm.misses == 0
    assert warm.hits == len(tree.modules)
    # the incremental claim: unchanged modules are never parsed again
    assert all(not mod.parsed for mod in tree.modules)
    [commit] = analysis.roots_matching(["Store.commit"])
    assert MEDIA_WRITE in analysis.summaries[commit]


def test_cache_invalidates_on_content_change(tmp_path):
    source = FIXTURE / "repro" / "sweep.py"
    copy_root = tmp_path / "tree"
    for path in sorted(FIXTURE.rglob("*.py")):
        target = copy_root / path.relative_to(FIXTURE)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(path.read_text())
    del source

    cache_path = tmp_path / "cache.json"
    cold = SummaryCache(cache_path)
    tree = ProjectTree.load(copy_root, config=fixture_config(), cache=cold)
    tree.effects()
    cold.save()

    edited = copy_root / "repro" / "sweep.py"
    edited.write_text(edited.read_text() + "\n\ndef extra():\n    pass\n")
    warm = SummaryCache.load(cache_path)
    tree = ProjectTree.load(copy_root, config=fixture_config(), cache=warm)
    analysis = tree.effects()
    assert warm.misses == 1  # exactly the edited module re-extracts
    assert any(node.qual == "extra" for node in analysis.nodes.values())
    parsed = [mod.relpath for mod in tree.modules if mod.parsed]
    assert parsed == ["repro/sweep.py"]
