"""Suffixed names built honestly from unit helpers."""

USEC = 1_000
MSEC = 1_000_000

SLOPE_NS = 9.815  # measured calibration coefficient: floats are exempt


def configure(timeout_ns=30 * USEC):
    budget_ns = 5 * MSEC
    retries = 0
    count_bytes = 0  # identity literals stay legal
    return budget_ns + timeout_ns, retries, count_bytes
