"""Magic literals and a unit mismatch."""


def configure():
    timeout_ns = 30000
    chunk_bytes = 4 * 1024
    deadline_ns = chunk_bytes
    return timeout_ns, deadline_ns
