"""The fixture crash sweep: reaches the commit paths, not off_sweep."""

from repro.store import Store


def run_sweep(faults, obs):
    store = Store(faults, obs)
    store.commit(b"x")
    store.commit_media_first(b"x")
    store.commit_after_super(b"x")
