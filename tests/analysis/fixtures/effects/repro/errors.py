"""Exception shapes mirroring the real tree's hierarchy."""


class AuroraError(Exception):
    pass


class PowerCut(AuroraError):
    pass
