"""Durability roots in every ordering shape the rule distinguishes."""

from repro.device import StorageDevice
from repro.fault.names import FP_COMMIT, FP_OFF_SWEEP, FP_ORPHAN
from repro.obs.names import C_OPS, G_DEAD, H_UNDOC


class Store:
    def __init__(self, faults, obs):
        self.device = StorageDevice()
        self.faults = faults
        self.obs = obs

    def commit(self, data):
        """Good: failpoint, then media, superblock last."""
        self.faults.fire(FP_COMMIT)
        self.device.write(0, data)
        self.obs.counter(C_OPS, 1)
        self.obs.histogram(H_UNDOC, 5)
        self.device.write_superblock(b"sb")

    def commit_media_first(self, data):
        """Bad: media write before any failpoint fires."""
        self.device.write(0, data)
        self.faults.fire(FP_COMMIT)
        self.device.write_superblock(b"sb")

    def commit_after_super(self, data):
        """Bad: media write after the last superblock write."""
        self.faults.fire(FP_COMMIT)
        self.device.write_superblock(b"sb")
        self.device.write(1, data)

    def off_sweep(self):
        """Public (so the fire site is live) but never swept."""
        self.faults.fire(FP_OFF_SWEEP)

    def _orphan(self):
        """Dead code: nobody calls this, so nothing here is live."""
        self.faults.fire(FP_ORPHAN)
        self.obs.gauge(G_DEAD, 1)
