"""Minimal storage device: the media/superblock write sinks."""


class StorageDevice:
    def __init__(self):
        self.blocks = {}
        self.superblock = b""

    def write(self, lba, data):
        self.blocks[lba] = data

    def write_superblock(self, data):
        self.superblock = data
