"""Fault catalogue for the effects-rule fixtures."""

#: fired on the good commit path; swept
FP_COMMIT = "fx.commit"
#: catalogued but never fired anywhere in the tree
FP_DEAD = "fx.dead"
#: fired only in a private helper nobody calls (dead code)
FP_ORPHAN = "fx.orphan"
#: swept value whose fire site the sweep entry never reaches
FP_OFF_SWEEP = "fx.off_sweep"
