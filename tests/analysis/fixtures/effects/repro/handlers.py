"""Exception-safety shapes: cuttable try bodies under broad handlers."""

from repro.errors import PowerCut
from repro.fault.names import FP_COMMIT


class Worker:
    def __init__(self, faults):
        self.faults = faults

    def risky(self):
        self.faults.fire(FP_COMMIT)

    def bad_swallow(self):
        # the cut arrives through the callee; the broad handler eats it
        try:
            self.risky()
        except Exception:
            return None

    def bad_bare(self):
        # bare except over an intrinsic fire site
        try:
            self.faults.fire(FP_COMMIT)
        except:  # noqa: E722 (deliberately bare for the fixture)
            pass

    def good_explicit(self):
        # an explicit PowerCut arm makes the broad arm deliberate
        try:
            self.risky()
        except PowerCut:
            raise
        except Exception:
            return None

    def good_reraise(self):
        # broad, but the cut is propagated
        try:
            self.risky()
        except Exception:
            raise

    def good_no_cut(self):
        # nothing in the body can cut; broad swallow is fine
        try:
            return len(self.__dict__)
        except Exception:
            return None
