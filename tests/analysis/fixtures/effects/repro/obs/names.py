"""Metric catalogue for the effects-rule fixtures."""

#: emitted on the commit path, documented
C_OPS = "fx.ops_total"
#: catalogued but never emitted
C_NEVER = "fx.never_total"
#: emitted only in a private helper nobody calls (dead code)
G_DEAD = "fx.dead_ratio"
#: emitted and reachable but missing from OBSERVABILITY.md
H_UNDOC = "fx.undoc_ns"
