"""Every shape of wall-clock leak the old grep could not see."""

import random
import time as t
from datetime import datetime
from time import monotonic as mono


def stamp():
    return t.time()


def tick():
    return mono()


def when():
    return datetime.now()


def roll():
    return random.random()


now = t.perf_counter


def late():
    return now()
