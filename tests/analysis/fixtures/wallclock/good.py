"""Clean module: everything is keyed to the simulated clock."""

from random import Random


def deterministic_jitter(seed):
    rng = Random(seed)
    return rng.random()


def now_ns(clock):
    return clock.now()
