"""Fixture observability catalogue."""

SPAN_CHECKPOINT = "sls.checkpoint"
COUNTER_UNUSED = "objstore.unused_total"
COUNTER_RESERVED = "objstore.reserved_total"  # sls-lint: ok[registry-drift] reserved for the GC PR
GAUGE_RATIO = "demo.ratio_permille"
