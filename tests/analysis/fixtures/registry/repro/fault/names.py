"""Fixture failpoint catalogue."""

FP_DEMO_WRITE = "demo.write"
#: the write-path codec's delta failpoint (sub-page records)
FP_DEMO_DELTA = "demo.write_delta"
