"""Fixture failpoint catalogue."""

FP_DEMO_WRITE = "demo.write"
