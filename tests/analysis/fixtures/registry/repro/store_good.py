"""Instrumented module done right: names are imported constants."""

from repro.fault import names as fault_names
from repro.obs import names as obs_names


def checkpoint(obs, faults):
    with obs.span(obs_names.SPAN_CHECKPOINT):
        faults.fire(fault_names.FP_DEMO_WRITE)


def persist(obs, faults):
    obs.gauge(obs_names.GAUGE_RATIO).set(1000)
    faults.fire(fault_names.FP_DEMO_DELTA)
