"""Instrumented module with spelled-out names: both drift shapes."""

from repro.obs import names as obs_names


def checkpoint(obs):
    with obs.span("sls.checkpoint"):
        pass


LABEL = "demo.write"
