"""Instrumented module with spelled-out names: both drift shapes."""

from repro.obs import names as obs_names


def checkpoint(obs):
    with obs.span("sls.checkpoint"):
        pass


LABEL = "demo.write"


def persist(obs, faults):
    # inline gauge + failpoint names: both drift the day the
    # catalogue renames them
    obs.gauge("demo.ratio_permille").set(1000)
    faults.fire("demo.write_delta")
