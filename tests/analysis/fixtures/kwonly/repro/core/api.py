"""Public surface eroding: positional flags, options, and **kwargs."""


class Api:
    def checkpoint(self, group, sync=True):
        return group, sync

    def restore(self, name, options=None):
        return name, options

    def configure(self, **kwargs):
        return kwargs
