"""Public surface holding the line: every flag is keyword-only."""


class Orchestrator:
    def persist(self, target, name=None, *, period_ns=0, auto_checkpoint=False):
        return target, name, period_ns, auto_checkpoint

    def persist_legacy(self, *args, **legacy_kwargs):
        # deprecation shim: exists to reject unknown keys loudly
        return self.persist(*args, **legacy_kwargs)

    def attach(self, *args, **kwargs):
        """Pure delegate: the whole body forwards to one callee."""
        return self.persist(*args, **kwargs)
