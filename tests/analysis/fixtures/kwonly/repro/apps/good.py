"""Apps surface holding the line: keyword-only knobs + legacy shim."""


class Manager:
    def deploy(self, name, *legacy_args, customize=None, lazy=True,
               options=None):
        return name, legacy_args, customize, lazy, options

    def invoke_legacy(self, *args, **legacy_kwargs):
        # deprecation shim: exists to reject unknown keys loudly
        return self.deploy(*args, **legacy_kwargs)
