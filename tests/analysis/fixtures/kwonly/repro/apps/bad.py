"""Apps surface eroding: positional flags and options objects."""


class Manager:
    def deploy(self, name, customize=None, lazy=True):
        return name, customize, lazy

    def invoke(self, name, invoke_options=None):
        return name, invoke_options

    def configure(self, **knobs):
        return knobs
