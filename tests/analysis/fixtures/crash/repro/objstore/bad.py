"""Five crash-ordering violations in one store."""

from repro.fault import names as fault_names


class Store:
    def commit_snapshot(self, snapshot):
        batch = self.batch
        batch.add_meta(snapshot)
        # superblock written while the batch still holds the records
        # (also: no failpoint before it, and no release_ns barrier)
        self.volume.write_superblock(self.directory)

    def commit_parallel(self, snapshot):
        if self.faults is not None:
            self.faults.fire(fault_names.FP_STORE_COMMIT, store=self.name)
        for shard, writes in self.shards.items():
            self.volume.write_data_batch(writes, queue=shard)
        # release_ns=None defeats the all-shard barrier: a shard's
        # records may still be in flight when the superblock lands
        self.volume.write_superblock(self.directory, release_ns=None)

    def compact(self):
        # raw device write bypassing the Volume layer
        self.device.write(0, b"x")
