"""Three crash-ordering violations in one store."""


class Store:
    def commit_snapshot(self, snapshot):
        batch = self.batch
        batch.add_meta(snapshot)
        # superblock written while the batch still holds the records
        self.volume.write_superblock(self.directory)

    def compact(self):
        # raw device write bypassing the Volume layer
        self.device.write(0, b"x")
