"""The volume adapter: its raw device calls are covered by the
device-level failpoints inside StorageDevice, so it is exempt from the
store-level coverage check."""


class Volume:
    def write_superblock(self, payload):
        self.device.write(0, payload)
