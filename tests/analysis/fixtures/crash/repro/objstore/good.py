"""Correct commit shapes: flush, fire, then name — with the
superblock barriered on every shard's completion."""

from repro.fault import names as fault_names


class Store:
    def commit_snapshot(self, snapshot):
        batch = self.batch
        batch.add_meta(snapshot)
        batch.flush()
        if self.faults is not None:
            self.faults.fire(fault_names.FP_STORE_COMMIT, store=self.name)
        self.volume.write_superblock(
            self.directory, release_ns=self.device.pending_deadline()
        )

    def commit_parallel(self, snapshot):
        # The sharded flush submits each shard's runs on its own
        # queue; the superblock then barriers on ALL of them via the
        # device-wide pending deadline.
        batch = self.batch
        batch.add_meta(snapshot)
        batch.flush()
        if self.faults is not None:
            self.faults.fire(fault_names.FP_STORE_COMMIT, store=self.name)
        self.volume.write_superblock(
            self.directory, release_ns=self.device.pending_deadline()
        )
