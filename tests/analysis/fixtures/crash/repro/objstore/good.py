"""The correct commit shape: flush, fire the failpoint, then name."""

from repro.fault import names as fault_names


class Store:
    def commit_snapshot(self, snapshot):
        batch = self.batch
        batch.add_meta(snapshot)
        batch.flush()
        if self.faults is not None:
            self.faults.fire(fault_names.FP_STORE_COMMIT, store=self.name)
        self.volume.write_superblock(self.directory)
