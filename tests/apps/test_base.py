"""Tests for the SimApp base and browser helpers."""

import pytest

from repro.apps.base import SimApp
from repro.core.orchestrator import SLS
from repro.posix.kernel import Kernel
from repro.units import GIB


@pytest.fixture
def kernel():
    return Kernel(memory_bytes=4 * GIB)


class TestSimApp:
    def test_boot_layout_segments(self, kernel):
        app = SimApp(kernel, "prog")
        names = [e.name for e in app.proc.aspace.entries]
        for expected in ("text", "rodata", "data", "bss", "libc", "stack"):
            assert expected in names

    def test_boot_layout_partially_resident(self, kernel):
        app = SimApp(kernel, "prog")
        assert app.proc.aspace.resident_pages() > 10

    def test_no_boot_variant(self, kernel):
        app = SimApp(kernel, "bare", boot=False)
        assert app.proc.aspace.entries == []

    def test_entry_lookup(self, kernel):
        app = SimApp(kernel, "prog")
        assert app.entry("text").name == "text"
        with pytest.raises(KeyError):
            app.entry("nonexistent")

    def test_compute_charges_clock(self, kernel):
        app = SimApp(kernel, "prog")
        before = kernel.clock.now
        app.compute(12_345)
        assert kernel.clock.now == before + 12_345

    def test_attach_api(self, kernel):
        sls = SLS(kernel)
        app = SimApp(kernel, "prog")
        api = app.attach_api(sls)
        assert app.api is api
        assert api.proc is app.proc

    def test_container_placement(self, kernel):
        box = kernel.create_container("jail")
        app = SimApp(kernel, "jailed", container=box)
        assert app.proc.container_id == box.cid

    def test_text_is_readonly(self, kernel):
        from repro.errors import SegmentationFault

        app = SimApp(kernel, "prog")
        text = app.entry("text")
        with pytest.raises(SegmentationFault):
            app.sys.poke(text.start, b"self-modifying")
