"""Unit tests for the hello-world (serverless) app."""

import pytest

from repro.apps.hello import HelloWorldApp
from repro.posix.kernel import Kernel
from repro.units import GIB


@pytest.fixture
def kernel():
    return Kernel(memory_bytes=4 * GIB)


class TestHelloWorld:
    def test_initialize_builds_warm_state(self, kernel):
        app = HelloWorldApp(kernel)
        before = app.resident_pages()
        app.initialize()
        assert app.resident_pages() > before + 150

    def test_invoke_produces_greeting(self, kernel):
        app = HelloWorldApp(kernel)
        app.initialize()
        assert app.invoke(b"aurora") == b"hello, aurora"
        assert app.invocations == 1

    def test_invoke_before_init_rejected(self, kernel):
        app = HelloWorldApp(kernel)
        with pytest.raises(RuntimeError):
            app.invoke()

    def test_repeated_invocations(self, kernel):
        app = HelloWorldApp(kernel)
        app.initialize()
        for i in range(10):
            assert app.invoke(b"r%d" % i) == b"hello, r%d" % i
        assert app.invocations == 10

    def test_invocation_charges_compute(self, kernel):
        app = HelloWorldApp(kernel)
        app.initialize()
        before = kernel.clock.now
        app.invoke()
        assert kernel.clock.now - before >= app.INVOKE_COMPUTE_NS

    def test_image_sized_for_table4(self, kernel):
        """The serverless rows of Table 4 assume a ~210-page image."""
        app = HelloWorldApp(kernel)
        app.initialize()
        assert 180 <= app.resident_pages() <= 260
