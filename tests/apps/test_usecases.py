"""Tests for the §4 use cases: serverless, debugging, RR, speculation."""

import pytest

from repro.apps.browser import BrowserApp
from repro.apps.debugger import TimeTravelDebugger
from repro.apps.hello import HelloWorldApp
from repro.apps.recordreplay import CheckpointedRecorder
from repro.apps.serverless import ServerlessManager
from repro.apps.speculation import SpeculativeClient
from repro.core.backends import MemoryBackend, make_disk_backend
from repro.core.orchestrator import SLS
from repro.core.rollback import ROLLBACK_SIGNAL
from repro.hw.nvme import NvmeDevice
from repro.posix.kernel import Kernel
from repro.posix.syscalls import Syscalls
from repro.units import GIB, KIB, MSEC


@pytest.fixture
def kernel():
    return Kernel(memory_bytes=8 * GIB)


@pytest.fixture
def sls(kernel):
    return SLS(kernel)


@pytest.fixture
def disk(kernel):
    return make_disk_backend(kernel, NvmeDevice(kernel.clock))


class TestServerless:
    def test_deploy_and_invoke(self, kernel, sls, disk):
        manager = ServerlessManager(sls, backend=disk)
        deployed = manager.deploy("fn-alpha", customize=b"alpha")
        assert deployed.delta_pages > 0
        result = manager.invoke("fn-alpha", payload=b"request")
        assert result.output == b"hello, request"
        assert result.restore.total_ns < 1_000_000  # sub-millisecond

    def test_invocations_are_isolated_instances(self, kernel, sls, disk):
        manager = ServerlessManager(sls, backend=disk)
        manager.deploy("fn")
        a = manager.invoke("fn", payload=b"one", keep_instance=True)
        b = manager.invoke("fn", payload=b"two", keep_instance=True)
        assert manager.functions["fn"].invocations == 2

    def test_dedup_density_grows_sublinearly(self, kernel, sls, disk):
        """Each function is a small delta over the shared runtime."""
        manager = ServerlessManager(sls, backend=disk)
        first = manager.deploy("fn-0", customize=b"0")
        store = disk.store
        bytes_after_first = store.physical_bytes()
        for i in range(1, 4):
            manager.deploy(f"fn-{i}", customize=b"%d" % i)
        report = manager.density_report()
        assert report["functions"] == 4
        # Physical growth per extra function is a fraction of the first.
        growth = report["physical_bytes"] - bytes_after_first
        assert growth < bytes_after_first
        assert report["dedup_ratio"] > 1.5

    def test_lazy_invoke_faults_less_upfront(self, kernel, sls, disk):
        manager = ServerlessManager(sls, backend=disk)
        manager.deploy("fn")
        lazy = manager.invoke("fn", lazy=True)
        eager = manager.invoke("fn", lazy=False)
        assert lazy.restore.pages_installed < eager.restore.pages_installed

    def test_duplicate_deploy_rejected(self, kernel, sls, disk):
        from repro.errors import SlsError

        manager = ServerlessManager(sls, backend=disk)
        manager.deploy("fn")
        with pytest.raises(SlsError):
            manager.deploy("fn")


class TestBrowser:
    def test_multiprocess_shared_memory(self, kernel):
        browser = BrowserApp(kernel, content_processes=3)
        browser.render_frame(1)
        assert browser.content_view(0, 7) == b"frame:1"
        assert browser.content_view(2, 7) == b"frame:1"

    def test_ipc_roundtrip(self, kernel):
        browser = BrowserApp(kernel, content_processes=2)
        assert browser.message_child(1, b"navigate") == b"ack:navigate"

    def test_checkpoint_restore_preserves_sharing(self, kernel, sls, disk):
        """The Firefox claim: a restored multi-process app still shares."""
        browser = BrowserApp(kernel, content_processes=2)
        browser.render_frame(7)
        group = sls.persist(browser.proc, name="firefox")
        group.attach(disk)
        image = sls.checkpoint(group)
        sls.barrier(group)
        procs, _ = sls.restore(image, new_instance=True, name_suffix="-r")
        chrome, c1, c2 = procs
        # Writing through the restored chrome is seen by restored
        # content processes: the shm object is still one object.
        Syscalls(kernel, chrome).poke(browser.shm_addr, b"frame:8")
        assert Syscalls(kernel, c1).peek(browser.shm_addr, 7) == b"frame:8"
        assert Syscalls(kernel, c2).peek(browser.shm_addr, 7) == b"frame:8"


class TestTimeTravelDebugger:
    @pytest.fixture
    def world(self, kernel, sls):
        app = HelloWorldApp(kernel)
        app.initialize()
        counter = app.sys.mmap(4 * KIB, name="counter")
        group = sls.persist(app.proc, name="hello")
        group.attach(MemoryBackend("memory"))
        history_values = []
        for i in range(6):
            app.sys.poke(counter.start, b"%02d" % i)
            sls.checkpoint(group)
            history_values.append(i)
        return app, group, counter, history_values

    def test_history_inspection(self, kernel, sls, world):
        app, group, counter, _ = world
        ttd = TimeTravelDebugger(sls, group)
        session = ttd.inspect(2)
        assert session.read_memory(counter.start, 2) == b"02"
        session.close()

    def test_inspection_does_not_disturb_live_app(self, kernel, sls, world):
        app, group, counter, _ = world
        ttd = TimeTravelDebugger(sls, group)
        session = ttd.inspect(0)
        session.syscalls().poke(counter.start, b"XX")
        session.close()
        assert app.sys.peek(counter.start, 2) == b"05"

    def test_bisect_finds_first_bad_checkpoint(self, kernel, sls, world):
        app, group, counter, _ = world
        ttd = TimeTravelDebugger(sls, group)

        def invariant(session):
            return int(session.read_memory(counter.start, 2)) < 3

        culprit = ttd.bisect(invariant)
        assert culprit is group.images[3]

    def test_bisect_none_when_invariant_holds(self, kernel, sls, world):
        app, group, counter, _ = world
        ttd = TimeTravelDebugger(sls, group)
        assert ttd.bisect(lambda s: True) is None

    def test_shake_reproduces_deterministically(self, kernel, sls, world):
        app, group, counter, _ = world
        ttd = TimeTravelDebugger(sls, group)
        hits = ttd.shake(
            4, attempts=3,
            probe=lambda s: s.read_memory(counter.start, 2) == b"04",
        )
        assert hits == 3


class TestRecordReplay:
    def test_log_bounded_by_checkpoints(self, kernel, sls, disk):
        app = HelloWorldApp(kernel)
        app.initialize()
        group = sls.persist(app.proc, name="hello")
        group.attach(disk)

        state = []

        def apply_input(procs, payload):
            state.append(payload)

        recorder = CheckpointedRecorder(sls, group, apply_input)
        for i in range(5):
            recorder.feed(b"input-%d" % i)
        assert recorder.log_bytes() > 0
        dropped = recorder.checkpoint()
        assert dropped == 5
        assert recorder.log == []
        recorder.feed(b"tail-input")
        assert recorder.stats.max_log_len == 5

    def test_recover_replays_tail(self, kernel, sls, disk):
        app = HelloWorldApp(kernel)
        app.initialize()
        counter = app.sys.mmap(4 * KIB, name="state")
        app.sys.poke(counter.start, b"0")
        group = sls.persist(app.proc, name="hello")
        group.attach(disk)

        def apply_input(procs, payload):
            sys = Syscalls(kernel, procs[0])
            current = int(sys.peek(counter.start, 4).rstrip(b"\x00") or b"0")
            sys.poke(counter.start, b"%d" % (current + int(payload)))

        recorder = CheckpointedRecorder(sls, group, apply_input)
        recorder.feed(b"5")
        recorder.checkpoint()       # state=5 checkpointed
        recorder.feed(b"3")         # state=8, only in the log
        procs = recorder.recover()  # rollback to 5, replay +3
        got = Syscalls(kernel, procs[0]).peek(counter.start, 1)
        assert got == b"8"
        assert recorder.stats.replays == 1


class TestSpeculation:
    def test_commit_path_saves_time(self, kernel, sls, disk):
        client = SpeculativeClient(kernel, sls)
        client.persist(disk)
        client.speculative_send(b"payload")
        client.outcome(acked=True)
        assert client.stats.commits == 1
        assert client.stats.time_saved_ns == client.RTT_NS
        assert client.state() == b"done\x00"

    def test_failed_speculation_rolls_back(self, kernel, sls, disk):
        client = SpeculativeClient(kernel, sls)
        client.persist(disk)
        client.speculative_send(b"payload")
        assert client.state()[:5] == b"sent:"
        client.outcome(acked=False)
        # Rolled back to the pre-send state and notified.
        assert client.state() == b"idle\x00"
        assert client.stats.rollbacks == 1
        assert client.saw_rollback_signal()

    def test_speculation_cycles(self, kernel, sls, disk):
        client = SpeculativeClient(kernel, sls)
        client.persist(disk)
        outcomes = [True, False, True, False, False]
        for acked in outcomes:
            client.speculative_send(b"x")
            client.outcome(acked=acked)
        assert client.stats.commits == 2
        assert client.stats.rollbacks == 3
