"""Property test: the LSM tree behaves exactly like a dict.

Under any interleaving of puts, deletes, forced memtable flushes, and
the compactions they trigger, point lookups must match a model dict —
the core correctness contract of the storage engine both persistence
ports run on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.lsmtree import LsmTree
from repro.posix.kernel import Kernel
from repro.units import GIB

KEYS = [b"k%02d" % i for i in range(12)]

ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.sampled_from(KEYS),
                  st.binary(min_size=1, max_size=8)),
        st.tuples(st.just("delete"), st.sampled_from(KEYS)),
        st.tuples(st.just("flush")),
    ),
    max_size=60,
)


@settings(max_examples=50, deadline=None)
@given(ops=ops_strategy)
def test_lsm_matches_model_dict(ops):
    kernel = Kernel(memory_bytes=1 * GIB)
    tree = LsmTree(kernel)
    model: dict[bytes, bytes] = {}
    for op in ops:
        if op[0] == "put":
            _, key, value = op
            tree.put(key, value)
            model[key] = value
        elif op[0] == "delete":
            _, key = op
            tree.delete(key)
            model.pop(key, None)
        else:
            tree.flush_memtable()
    for key in KEYS:
        assert tree.get(key) == model.get(key), key
    assert tree.entry_count() == len(model)


@settings(max_examples=30, deadline=None)
@given(
    n_puts=st.integers(1, 300),
)
def test_lsm_flush_compact_preserves_everything(n_puts):
    """Automatic flushes + multi-level compactions lose nothing."""
    kernel = Kernel(memory_bytes=1 * GIB)
    tree = LsmTree(kernel)
    for i in range(n_puts):
        tree.put(b"key-%06d" % i, b"v%d" % i)
    for i in range(0, n_puts, max(1, n_puts // 7)):
        assert tree.get(b"key-%06d" % i) == b"v%d" % i
    assert tree.entry_count() == n_puts
