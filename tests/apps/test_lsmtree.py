"""Tests for the LSM tree and its persistence ports."""

import pytest

from repro.apps.lsmtree import AuroraLog, ClassicWal, LsmTree
from repro.core.backends import make_disk_backend
from repro.core.orchestrator import SLS
from repro.hw.nvme import NvmeDevice
from repro.posix.kernel import Kernel
from repro.units import GIB


@pytest.fixture
def kernel():
    return Kernel(memory_bytes=4 * GIB)


@pytest.fixture
def tree(kernel):
    return LsmTree(kernel)


class TestLsmCore:
    def test_put_get(self, tree):
        tree.put(b"key", b"value")
        assert tree.get(b"key") == b"value"

    def test_missing_key(self, tree):
        assert tree.get(b"ghost") is None

    def test_overwrite(self, tree):
        tree.put(b"k", b"v1")
        tree.put(b"k", b"v2")
        assert tree.get(b"k") == b"v2"

    def test_delete_tombstone(self, tree):
        tree.put(b"k", b"v")
        tree.delete(b"k")
        assert tree.get(b"k") is None

    def test_memtable_flush_to_sstable(self, tree):
        for i in range(tree.MEMTABLE_LIMIT):
            tree.put(b"key-%04d" % i, b"val-%d" % i)
        assert tree.flushes >= 1
        assert len(tree.memtable) < tree.MEMTABLE_LIMIT
        assert tree.get(b"key-0005") == b"val-5"

    def test_read_through_levels(self, tree):
        tree.put(b"old", b"from-sstable")
        tree.flush_memtable()
        tree.put(b"new", b"from-memtable")
        assert tree.get(b"old") == b"from-sstable"
        assert tree.get(b"new") == b"from-memtable"

    def test_newest_wins_across_runs(self, tree):
        tree.put(b"k", b"v1")
        tree.flush_memtable()
        tree.put(b"k", b"v2")
        tree.flush_memtable()
        assert tree.get(b"k") == b"v2"

    def test_compaction_merges_runs(self, tree):
        for run in range(tree.LEVEL_FANOUT):
            tree.put(b"run-%d" % run, b"v")
            tree.flush_memtable()
        assert tree.compactions >= 1
        assert len(tree.levels.get(0, [])) == 0
        for run in range(tree.LEVEL_FANOUT):
            assert tree.get(b"run-%d" % run) == b"v"

    def test_compaction_drops_superseded_values(self, tree):
        for run in range(tree.LEVEL_FANOUT):
            tree.put(b"k", b"v%d" % run)
            tree.flush_memtable()
        assert tree.get(b"k") == b"v%d" % (tree.LEVEL_FANOUT - 1)

    def test_tombstone_shadows_older_value_after_compaction(self, tree):
        tree.put(b"k", b"live")
        tree.flush_memtable()
        tree.delete(b"k")
        for _ in range(tree.LEVEL_FANOUT):
            tree.flush_memtable() if tree.memtable else tree.put(b"pad", b"x")
            tree.flush_memtable()
        assert tree.get(b"k") is None

    def test_entry_count(self, tree):
        for i in range(10):
            tree.put(b"k%d" % i, b"v")
        tree.delete(b"k0")
        assert tree.entry_count() == 9

    def test_scans_large_dataset(self, tree):
        for i in range(1000):
            tree.put(b"key-%06d" % i, b"value-%d" % i)
        for i in (0, 499, 999):
            assert tree.get(b"key-%06d" % i) == b"value-%d" % i


class TestCommitPaths:
    def test_classic_wal_costs_fsync(self, kernel):
        wal = ClassicWal(NvmeDevice(kernel.clock, name="wal"))
        tree = LsmTree(kernel, name="rocks-classic", data_dir="/classic",
                       commit_log=wal)
        before = kernel.clock.now
        tree.put(b"k", b"v")
        wal_latency = kernel.clock.now - before
        assert wal.records == 1
        assert wal_latency > 25_000  # 3 sync device writes

    def test_aurora_log_cheaper_per_commit(self, kernel):
        sls = SLS(kernel)
        wal_dev = NvmeDevice(kernel.clock, name="wal")
        classic = LsmTree(kernel, name="classic", data_dir="/c",
                          commit_log=ClassicWal(wal_dev))
        aurora_tree = LsmTree(kernel, name="aurora", data_dir="/a")
        group = sls.persist(aurora_tree.proc, name="rocksdb")
        group.attach(make_disk_backend(kernel, NvmeDevice(kernel.clock)))
        api = aurora_tree.attach_api(sls)
        aurora_tree.commit_log = AuroraLog(api)

        with kernel.clock.region() as classic_region:
            classic.put(b"k", b"v")
        with kernel.clock.region() as aurora_region:
            aurora_tree.put(b"k", b"v")
        assert aurora_region.elapsed < classic_region.elapsed

    def test_aurora_replay_repairs_memtable(self, kernel):
        """Crash recovery: restore checkpoint + replay ntflush tail."""
        sls = SLS(kernel)
        tree = LsmTree(kernel, name="aurora", data_dir="/a")
        group = sls.persist(tree.proc, name="rocksdb")
        group.attach(make_disk_backend(kernel, NvmeDevice(kernel.clock)))
        api = tree.attach_api(sls)
        log = AuroraLog(api)
        tree.commit_log = log
        tree.put(b"before", b"checkpointed")
        sls.checkpoint(group)
        api.sls_log_truncate(log.records + 1)
        tree.put(b"after", b"logged-only")
        # Simulate rolling back to the checkpoint: state added since
        # (the post-checkpoint put) is gone; checkpointed state is not.
        del tree.memtable[b"after"]
        assert tree.get(b"after") is None
        applied = log.replay_into(tree)
        assert applied == 1
        assert tree.get(b"after") == b"logged-only"
        assert tree.get(b"before") == b"checkpointed"
