"""Tests for the YCSB-style workload generator."""

import pytest

from repro.apps.kvstore import RedisLikeServer
from repro.apps.workload import (
    WORKLOAD_A,
    WORKLOAD_B,
    WORKLOAD_C,
    WORKLOAD_INGEST,
    KvWorkload,
    WorkloadSpec,
)
from repro.posix.kernel import Kernel
from repro.units import GIB, MIB


@pytest.fixture
def server():
    kernel = Kernel(memory_bytes=4 * GIB)
    srv = RedisLikeServer(kernel, working_set=4 * MIB)
    srv.load_dataset()
    return srv


class TestWorkload:
    def test_mix_respected(self, server):
        workload = KvWorkload(server, WORKLOAD_B, seed=7)
        stats = workload.run_ops(2000)
        read_fraction = stats.reads / stats.operations
        assert 0.92 < read_fraction < 0.98

    def test_read_only_never_dirties(self, server):
        workload = KvWorkload(server, WORKLOAD_C, seed=7)
        stats = workload.run_ops(500)
        assert stats.writes == 0
        assert not stats.dirty_slots

    def test_ingest_all_writes(self, server):
        workload = KvWorkload(server, WORKLOAD_INGEST, seed=7)
        stats = workload.run_ops(500)
        assert stats.reads == 0
        assert stats.writes == 500

    def test_zipf_skew_concentrates_dirty_set(self, server):
        """Skewed writes dirty far fewer distinct slots than uniform."""
        skewed = KvWorkload(server, WorkloadSpec("skew", 0.0, 1.2), seed=7)
        uniform = KvWorkload(server, WorkloadSpec("flat", 0.0, 0.0), seed=7)
        s_dirty = len(skewed.run_ops(800).dirty_slots)
        u_dirty = len(uniform.run_ops(800).dirty_slots)
        assert s_dirty < u_dirty / 2

    def test_deterministic(self, server):
        a = KvWorkload(server, WORKLOAD_A, seed=42).run_ops(300)
        kernel2 = Kernel(memory_bytes=4 * GIB)
        server2 = RedisLikeServer(kernel2, working_set=4 * MIB)
        server2.load_dataset()
        b = KvWorkload(server2, WORKLOAD_A, seed=42).run_ops(300)
        assert a.reads == b.reads
        assert a.dirty_slots == b.dirty_slots

    def test_interval_reset(self, server):
        workload = KvWorkload(server, WORKLOAD_INGEST, seed=7)
        workload.run_ops(100)
        dirtied = workload.stats.reset_interval()
        assert dirtied > 0
        assert not workload.stats.dirty_slots

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec("bad", read_fraction=1.5)
        with pytest.raises(ValueError):
            WorkloadSpec("bad", zipf_skew=-1)
