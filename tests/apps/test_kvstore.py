"""Tests for the Redis-like server and its two persistence engines."""

import pytest

from repro.apps.kvstore import (
    AuroraPersistence,
    ClassicPersistence,
    RedisLikeServer,
)
from repro.core.backends import make_disk_backend
from repro.core.orchestrator import SLS
from repro.hw.nvme import NvmeDevice
from repro.posix.kernel import Kernel
from repro.units import GIB, MIB, PAGE_SIZE


@pytest.fixture
def kernel():
    return Kernel(memory_bytes=8 * GIB)


@pytest.fixture
def sls(kernel):
    return SLS(kernel)


@pytest.fixture
def server(kernel):
    srv = RedisLikeServer(kernel, working_set=16 * MIB)
    srv.load_dataset()
    return srv


class TestServer:
    def test_dataset_resident(self, server):
        assert server.proc.aspace.resident_pages() >= server.nslots

    def test_set_get(self, server):
        server.set(5, b"value-five")
        assert server.get(5, 10) == b"value-five"

    def test_distinct_slot_content(self, server):
        assert server.get(0, 9) != server.get(1, 9)

    def test_dirty_fraction_touches_exact_count(self, server, kernel):
        # Arm COW first (the dirty log is only complete once pages are
        # frozen/write-protected, i.e. after a checkpoint).
        first = kernel.cow.freeze(server.proc.aspace.vm_objects())
        touched = server.dirty_fraction(0.25)
        assert touched == server.nslots // 4
        second = kernel.cow.freeze(
            server.proc.aspace.vm_objects(), incremental_since=first.epoch + 1
        )
        assert len(second) == touched

    def test_slot_bounds(self, server):
        with pytest.raises(IndexError):
            server.slot_addr(server.nslots)

    def test_clients_connect_outside_group(self, server, sls, kernel):
        clients = server.accept_clients(3)
        group = sls.persist(server.proc)
        assert all(c.pid not in group.member_pids() for c in clients)
        server.reply(0, b"pong")
        got = clients[0].sys.read(clients[0]._redis_fd, 4)
        assert got == b"pong"


class TestAuroraPort:
    @pytest.fixture
    def port(self, server, sls, kernel):
        group = sls.persist(server.proc, name="redis")
        group.attach(make_disk_backend(kernel, NvmeDevice(kernel.clock)))
        server.attach_api(sls)
        return AuroraPersistence(server)

    def test_save_is_submillisecond(self, port, server):
        server.dirty_fraction(0.1)
        stop_ns = port.save()
        assert stop_ns < 1_000_000

    def test_log_commit_low_latency(self, port, kernel):
        latency = port.append_and_commit(b"SET k v")
        assert latency < 50_000  # ~one NVMe write

    def test_checkpoint_truncates_log(self, port):
        port.append_and_commit(b"SET a 1")
        port.append_and_commit(b"SET b 2")
        port.save()
        assert port.recover_replay() == []

    def test_replay_after_save(self, port):
        port.save()
        port.append_and_commit(b"SET post-ckpt 1")
        assert port.recover_replay() == [b"SET post-ckpt 1"]

    def test_wait_durable(self, port, server):
        port.save()
        port.wait_durable()
        assert server.api.sls.group_of(server.proc).latest_image.durable


class TestClassicBaseline:
    @pytest.fixture
    def classic(self, server, kernel):
        return ClassicPersistence(server, NvmeDevice(kernel.clock, name="aof"))

    def test_aof_fsync_slower_than_ntflush(self, classic, server, sls, kernel):
        group = sls.persist(server.proc, name="redis")
        group.attach(make_disk_backend(kernel, NvmeDevice(kernel.clock)))
        server.attach_api(sls)
        aurora = AuroraPersistence(server)
        aof_ns = classic.append_and_fsync(b"SET k v")
        nt_ns = aurora.append_and_commit(b"SET k v")
        # fsync pays journal round trips the persistent log does not.
        assert aof_ns > nt_ns

    def test_bgsave_stall_exceeds_aurora_stop(self, sls, kernel):
        # Steady state at a bigger heap: BGSAVE's fork write-protects
        # the whole working set every save, Aurora only the dirty set.
        server = RedisLikeServer(kernel, working_set=64 * MIB)
        server.load_dataset()
        classic = ClassicPersistence(server, NvmeDevice(kernel.clock, name="aof"))
        group = sls.persist(server.proc, name="redis")
        group.attach(make_disk_backend(kernel, NvmeDevice(kernel.clock)))
        server.attach_api(sls)
        aurora = AuroraPersistence(server)
        aurora.save()  # initial full checkpoint
        server.dirty_fraction(0.1)
        aurora_stop = aurora.save()  # incremental
        fork_stall = classic.bgsave()
        assert fork_stall > aurora_stop

    def test_bgsave_child_cleaned_up(self, classic, server, kernel):
        procs_before = len(kernel.procs)
        classic.bgsave()
        assert len(kernel.procs) == procs_before
