"""The redesigned keyword-only serverless API and the fleet layer."""

import warnings

import pytest

from repro.apps.serverless import (
    DeployOptions,
    InvokeOptions,
    ServerlessFleet,
    ServerlessManager,
)
from repro.core.backends import make_disk_backend
from repro.core.orchestrator import SLS
from repro.core.scheduler import TenantQoS
from repro.errors import SlsError
from repro.hw.nvme import NvmeDevice
from repro.obs import names as obs_names
from repro.posix.kernel import Kernel
from repro.sim.rng import RngFactory
from repro.units import GIB


@pytest.fixture
def kernel():
    return Kernel(memory_bytes=8 * GIB)


@pytest.fixture
def sls(kernel):
    return SLS(kernel)


@pytest.fixture
def disk(kernel):
    return make_disk_backend(kernel, NvmeDevice(kernel.clock))


@pytest.fixture
def manager(sls, disk):
    return ServerlessManager(sls, backend=disk)


class TestConstruction:
    def test_backend_is_required_keyword(self, sls):
        with pytest.raises(TypeError):
            ServerlessManager(sls)

    def test_non_backend_rejected_early(self, sls):
        # The old API discovered a donor backend at first deploy; now a
        # misconfigured manager fails at construction.
        with pytest.raises(SlsError, match="StoreBackend"):
            ServerlessManager(sls, backend="disk0")


class TestOptionsObjects:
    def test_deploy_options_validation(self):
        with pytest.raises(SlsError, match="customize"):
            DeployOptions(customize="not-bytes")
        with pytest.raises(SlsError, match="tenant"):
            DeployOptions(tenant=7)

    def test_invoke_options_validation(self):
        with pytest.raises(SlsError, match="payload"):
            InvokeOptions(payload="str")
        with pytest.raises(SlsError, match="lazy"):
            InvokeOptions(lazy=1)

    def test_options_conflict_with_keywords(self, manager):
        manager.deploy("fn", customize=b"x")
        with pytest.raises(SlsError, match="not both"):
            manager.deploy(
                "fn2", customize=b"y", options=DeployOptions(customize=b"y")
            )
        with pytest.raises(SlsError, match="not both"):
            manager.invoke(
                "fn", payload=b"p", options=InvokeOptions(payload=b"p")
            )

    def test_options_path_equivalent_to_keywords(self, manager):
        manager.deploy("fn", options=DeployOptions(customize=b"v1"))
        result = manager.invoke(
            "fn", options=InvokeOptions(payload=b"req", lazy=False)
        )
        assert result.output == b"hello, req"


class TestDeprecationShims:
    def test_positional_deploy_warns_and_works(self, manager):
        with pytest.warns(DeprecationWarning, match="positional deploy"):
            deployed = manager.deploy("fn", b"delta")
        assert deployed.delta_pages > 0

    def test_positional_invoke_warns_and_works(self, manager):
        manager.deploy("fn", customize=b"delta")
        with pytest.warns(DeprecationWarning, match="positional invoke"):
            result = manager.invoke("fn", b"req", True)
        assert result.output == b"hello, req"

    def test_keyword_calls_do_not_warn(self, manager):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            manager.deploy("fn", customize=b"delta")
            manager.invoke("fn", payload=b"req", lazy=True)

    def test_too_many_positionals_rejected(self, manager):
        with pytest.raises(TypeError, match="at most"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                manager.deploy("fn", b"a", None, "extra")


class TestTenancyAndObservability:
    def test_deploy_bills_tenant(self, kernel, sls, manager):
        sls.scheduler.register_tenant("team-a", qos=TenantQoS())
        deployed = manager.deploy("fn", tenant="team-a")
        assert sls.scheduler.tenant_of(deployed.group) == "team-a"
        assert len(sls.scheduler.completed_lags["team-a"]) == 1

    def test_unknown_tenant_fails_deploy(self, manager):
        with pytest.raises(SlsError, match="unknown tenant"):
            manager.deploy("fn", tenant="ghost")

    def test_cold_start_observed(self, kernel, manager):
        manager.deploy("fn", customize=b"v")
        result = manager.invoke("fn", payload=b"req")
        assert result.cold_start_ns > 0
        reg = kernel.obs.registry
        hist = reg.histogram(obs_names.H_COLD_START, tenant="default")
        counter = reg.counter(
            obs_names.C_SERVERLESS_COLD_STARTS, tenant="default"
        )
        assert hist.count == 1
        assert counter.value == 1


class TestFleet:
    def test_deploy_many_and_storm(self, sls, manager):
        fleet = ServerlessFleet(
            manager, rng=RngFactory(root_seed=7), tenant="fleet"
        )
        fleet.deploy_many(8)
        report = fleet.storm(invocations=30, mean_gap_ns=100_000)
        assert report.invocations == 30
        assert 1 <= report.functions_hit <= 8
        assert 0 < report.cold_start_p50_ns <= report.cold_start_p99_ns
        assert len(sls.scheduler.completed_lags["fleet"]) == 8

    def test_storm_is_deterministic(self):
        def run():
            kernel = Kernel(memory_bytes=8 * GIB)
            sls = SLS(kernel)
            disk = make_disk_backend(kernel, NvmeDevice(kernel.clock))
            manager = ServerlessManager(sls, backend=disk)
            fleet = ServerlessFleet(
                manager, rng=RngFactory(root_seed=7), tenant="fleet"
            )
            fleet.deploy_many(6)
            return fleet.storm(invocations=25, mean_gap_ns=100_000)

        assert run() == run()

    def test_storm_requires_deployment(self, manager):
        fleet = ServerlessFleet(manager, rng=RngFactory())
        with pytest.raises(SlsError, match="at least one"):
            fleet.storm(invocations=5, mean_gap_ns=1000)
