"""Coverage for the error hierarchy and kernel odds and ends."""

import pytest

from repro import errors
from repro.hw.memdev import MemoryDevice
from repro.posix.kernel import Kernel
from repro.units import GIB, MSEC


class TestErrorHierarchy:
    def test_everything_is_an_aurora_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is not errors.AuroraError:
                    assert issubclass(obj, errors.AuroraError), name

    def test_posix_errors_carry_errno(self):
        assert errors.BadFileDescriptor().errno == "EBADF"
        assert errors.NoSuchFile().errno == "ENOENT"
        assert errors.WouldBlock().errno == "EAGAIN"
        custom = errors.PosixError("msg", errno="EBUSY")
        assert custom.errno == "EBUSY"

    def test_segfault_records_address(self):
        fault = errors.SegmentationFault(0xDEAD)
        assert fault.address == 0xDEAD
        assert "0xdead" in str(fault)

    def test_catch_at_subsystem_granularity(self):
        with pytest.raises(errors.SlsError):
            raise errors.CheckpointError("x")
        with pytest.raises(errors.ObjectStoreError):
            raise errors.ChecksumError("x")
        with pytest.raises(errors.HardwareError):
            raise errors.DeviceFullError("x")


class TestKernelOdds:
    def test_swap_device_created_on_demand(self):
        kernel = Kernel(memory_bytes=1 * GIB)
        assert kernel._swap is None
        swap = kernel.swap
        assert swap is kernel.swap  # cached
        assert kernel.devices  # a device was provisioned

    def test_swap_prefers_existing_persistent_device(self):
        from repro.hw.nvme import NvmeDevice

        kernel = Kernel(memory_bytes=1 * GIB)
        kernel.add_device(MemoryDevice(kernel.clock))  # volatile: skipped
        nvme = kernel.add_device(NvmeDevice(kernel.clock))
        assert kernel.swap.device is nvme

    def test_pageout_daemon_lazy(self):
        kernel = Kernel(memory_bytes=1 * GIB)
        daemon = kernel.pageout
        assert daemon is kernel.pageout

    def test_run_for_dispatches_events(self):
        kernel = Kernel(memory_bytes=1 * GIB)
        fired = []
        kernel.events.schedule_after(5 * MSEC, lambda: fired.append(1))
        kernel.run_for(10 * MSEC)
        assert fired == [1]
        assert kernel.clock.now >= 10 * MSEC

    def test_repr_smoke(self):
        kernel = Kernel()
        assert "aurora0" in repr(kernel)
        assert "init" in repr(kernel.init.aspace) or repr(kernel.init)
