"""Property tests for the VFS and filesystem layers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AuroraError, PosixError
from repro.posix.fd import O_CREAT, O_RDWR
from repro.posix.vnode import TmpFS, VfsNamespace

names = st.text(
    alphabet="abcdefgh", min_size=1, max_size=4
)
segments = st.lists(names, min_size=1, max_size=4)


@settings(max_examples=60, deadline=None)
@given(parts=segments, noise=st.lists(st.sampled_from(["", ".", ".."]),
                                      max_size=4))
def test_path_normalization_is_stable(parts, noise):
    """Normalizing a path is idempotent and '.'/'..'/'//' noise between
    components never escapes the root or changes the resolved file."""
    clean = "/" + "/".join(parts)
    noisy_parts = []
    for i, part in enumerate(parts):
        noisy_parts.extend(noise)
        noisy_parts.append(part)
    noisy = "/" + "/".join(p for p in noisy_parts if p != "")
    norm = VfsNamespace._normalize
    assert norm(norm(clean)) == norm(clean)
    # Noise of '.' and '' (double slash) resolves identically; '..'
    # consumes a preceding real component, so only test without '..'.
    if ".." not in noise:
        assert norm(noisy) == norm(clean)
    # Nothing ever escapes the root.
    assert norm("/" + "/".join([".."] * 8 + parts)) == norm(clean)


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("create"), names),
            st.tuples(st.just("write"), names, st.binary(max_size=32)),
            st.tuples(st.just("unlink"), names),
            st.tuples(st.just("mkdir"), names),
        ),
        max_size=30,
    )
)
def test_tmpfs_matches_model(ops):
    """TmpFS namespace + content tracks a model dict under random ops."""
    vfs = VfsNamespace(TmpFS())
    model_files: dict[str, bytes] = {}
    model_dirs: set[str] = set()
    for op in ops:
        name = op[1]
        path = "/" + name
        try:
            if op[0] == "create":
                if name in model_dirs:
                    continue
                vfs.open(path, O_RDWR | O_CREAT)
                model_files.setdefault(name, b"")
            elif op[0] == "write":
                if name in model_dirs:
                    continue
                handle = vfs.open(path, O_RDWR | O_CREAT)
                handle.write(op[2])
                old = model_files.get(name, b"")
                model_files[name] = op[2] + old[len(op[2]):]
            elif op[0] == "unlink":
                vfs.unlink(path)
                model_files.pop(name, None)
                model_dirs.discard(name)
            elif op[0] == "mkdir":
                if name in model_files or name in model_dirs:
                    continue
                vfs.mkdir(path)
                model_dirs.add(name)
        except AuroraError:
            pass  # model-mirrored rejections (ENOENT etc.)
    listing = set(vfs.listdir("/"))
    assert listing == set(model_files) | model_dirs
    for name, content in model_files.items():
        handle = vfs.open("/" + name, O_RDWR)
        assert handle.read(64) == content


@settings(max_examples=40, deadline=None)
@given(chunks=st.lists(st.binary(min_size=1, max_size=64), max_size=15))
def test_pipe_preserves_byte_stream(chunks):
    """Whatever is written to a pipe is read back exactly, in order."""
    from repro.errors import WouldBlock
    from repro.posix.pipe import make_pipe

    r, w = make_pipe()
    written = bytearray()
    for chunk in chunks:
        accepted = w.write(chunk)
        written += chunk[:accepted]
    out = bytearray()
    while True:
        try:
            data = r.read(97)
        except WouldBlock:
            break
        if not data:
            break
        out += data
    assert bytes(out) == bytes(written)
