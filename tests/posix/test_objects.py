"""Tests for the kernel object registry."""

import pytest

from repro.errors import PosixError
from repro.posix.objects import KernelObject, ObjectRegistry


class Widget(KernelObject):
    otype = "widget"


class Gadget(KernelObject):
    otype = "gadget"


class TestRegistry:
    def test_koids_unique_and_monotonic(self):
        a, b = Widget(), Widget()
        assert b.koid > a.koid

    def test_register_lookup(self):
        registry = ObjectRegistry()
        widget = registry.register(Widget())
        assert registry.get(widget.koid) is widget
        assert registry.lookup(widget.koid) is widget
        assert widget.koid in registry

    def test_double_register_rejected(self):
        registry = ObjectRegistry()
        widget = registry.register(Widget())
        with pytest.raises(PosixError):
            registry.register(widget)

    def test_lookup_missing_raises(self):
        registry = ObjectRegistry()
        assert registry.get(999) is None
        with pytest.raises(PosixError):
            registry.lookup(999)

    def test_unregister(self):
        registry = ObjectRegistry()
        widget = registry.register(Widget())
        registry.unregister(widget)
        assert widget.koid not in registry
        registry.unregister(widget)  # idempotent

    def test_by_type_filters(self):
        registry = ObjectRegistry()
        registry.register(Widget())
        registry.register(Widget())
        registry.register(Gadget())
        assert len(list(registry.by_type("widget"))) == 2
        assert len(list(registry.by_type("gadget"))) == 1
        assert len(registry.all_objects()) == 3
        assert len(registry) == 3
