"""Unit tests for pipes, sockets, shared memory, and message queues."""

import pytest

from repro.errors import (
    BrokenPipe,
    ConnectionRefused,
    NoSuchFile,
    PosixError,
    WouldBlock,
)
from repro.posix.kernel import Kernel
from repro.posix.msgqueue import MessageQueue, MessageQueueRegistry
from repro.posix.pipe import make_pipe
from repro.posix.shm import SharedMemoryRegistry
from repro.posix.socket import (
    ExtConsHold,
    UnixSocketNamespace,
    socketpair,
)
from repro.units import GIB, KIB


class TestPipes:
    def test_write_read(self):
        r, w = make_pipe()
        w.write(b"data")
        assert r.read(4) == b"data"

    def test_partial_read(self):
        r, w = make_pipe()
        w.write(b"abcdef")
        assert r.read(3) == b"abc"
        assert r.read(3) == b"def"

    def test_empty_read_blocks(self):
        r, _w = make_pipe()
        with pytest.raises(WouldBlock):
            r.read(1)

    def test_eof_after_writer_close(self):
        r, w = make_pipe()
        w.write(b"tail")
        w.refcount = 1
        w.decref()
        assert r.read(4) == b"tail"
        assert r.read(4) == b""  # EOF

    def test_epipe_after_reader_close(self):
        r, w = make_pipe()
        r.refcount = 1
        r.decref()
        with pytest.raises(BrokenPipe):
            w.write(b"x")

    def test_capacity_backpressure(self):
        r, w = make_pipe()
        accepted = w.write(b"x" * (w.pipe.capacity + 100))
        assert accepted == w.pipe.capacity
        with pytest.raises(WouldBlock):
            w.write(b"more")
        r.read(100)
        assert w.write(b"more") == 4

    def test_wrong_direction(self):
        r, w = make_pipe()
        with pytest.raises(BrokenPipe):
            w.read(1)
        with pytest.raises(BrokenPipe):
            r.write(b"x")


class TestSockets:
    def test_socketpair_duplex(self):
        a, b = socketpair()
        a.send(b"ping")
        assert b.recv(4) == b"ping"
        b.send(b"pong")
        assert a.recv(4) == b"pong"

    def test_recv_empty_blocks(self):
        a, b = socketpair()
        with pytest.raises(WouldBlock):
            a.recv(1)

    def test_eof_after_peer_close(self):
        a, b = socketpair()
        a.send(b"last")
        a.close()
        assert b.recv(4) == b"last"
        assert b.recv(4) == b""

    def test_listen_connect_accept(self):
        ns = UnixSocketNamespace()
        listener = ns.bind_listen("srv")
        client = ns.connect("srv")
        server_side = ns.accept(listener)
        client.send(b"hello")
        assert server_side.recv(5) == b"hello"

    def test_connect_refused(self):
        ns = UnixSocketNamespace()
        with pytest.raises(ConnectionRefused):
            ns.connect("nobody")

    def test_address_in_use(self):
        ns = UnixSocketNamespace()
        ns.bind_listen("srv")
        with pytest.raises(PosixError):
            ns.bind_listen("srv")

    def test_accept_empty_queue(self):
        ns = UnixSocketNamespace()
        listener = ns.bind_listen("srv")
        with pytest.raises(WouldBlock):
            ns.accept(listener)


class TestExtConsHold:
    def test_hold_blocks_delivery_until_release(self):
        a, b = socketpair()
        delivered = []
        a.extcons_hold = ExtConsHold(release=delivered.append)
        a.send(b"held")
        assert b.pending_bytes() == 0
        a.extcons_hold.release_all()
        assert delivered == [b"held"]

    def test_mark_cuts_the_stream(self):
        a, b = socketpair()
        hold = ExtConsHold(release=b.recv_buffer.extend)
        a.extcons_hold = hold
        a.send(b"before")
        cut = hold.mark()
        a.send(b"after")
        hold.release_until(cut)
        assert b.recv(16) == b"before"
        assert hold.held_bytes == 5

    def test_discard_on_rollback(self):
        a, b = socketpair()
        hold = ExtConsHold(release=b.recv_buffer.extend)
        a.extcons_hold = hold
        a.send(b"doomed")
        assert hold.discard_all() == 6
        with pytest.raises(WouldBlock):
            b.recv(1)


class TestSharedMemory:
    @pytest.fixture
    def registry(self):
        from repro.mem.phys import PhysicalMemory

        return SharedMemoryRegistry(PhysicalMemory(total_bytes=1 * GIB))

    def test_shmget_same_key_same_segment(self, registry):
        a = registry.shmget(42, 64 * KIB)
        b = registry.shmget(42, 64 * KIB)
        assert a is b

    def test_ipc_private_always_new(self, registry):
        a = registry.shmget(registry.IPC_PRIVATE, 64 * KIB)
        b = registry.shmget(registry.IPC_PRIVATE, 64 * KIB)
        assert a is not b

    def test_size_page_aligned(self, registry):
        seg = registry.shmget(1, 100)
        assert seg.size == 4096

    def test_rmid_deferred_until_detach(self, registry):
        seg = registry.shmget(7, 64 * KIB)
        registry.note_attach(seg)
        registry.shmrm(7)
        assert registry.get(7) is None or seg.marked_removed
        registry.note_detach(seg)
        assert registry.get(7) is None

    def test_posix_shm_named(self, registry):
        seg = registry.shm_open("/cache", 64 * KIB)
        assert registry.shm_open("/cache", 64 * KIB) is seg
        registry.shm_unlink("/cache")
        with pytest.raises(NoSuchFile):
            registry.shm_unlink("/cache")

    def test_invalid_size(self, registry):
        with pytest.raises(PosixError):
            registry.shmget(registry.IPC_PRIVATE, 0)


class TestMessageQueues:
    def test_send_receive_fifo(self):
        queue = MessageQueue(key=1)
        queue.send(1, b"first")
        queue.send(2, b"second")
        assert queue.receive().body == b"first"
        assert queue.receive().body == b"second"

    def test_receive_by_type(self):
        queue = MessageQueue(key=1)
        queue.send(1, b"one")
        queue.send(2, b"two")
        assert queue.receive(mtype=2).body == b"two"
        assert queue.receive().body == b"one"

    def test_empty_blocks(self):
        queue = MessageQueue(key=1)
        with pytest.raises(WouldBlock):
            queue.receive()

    def test_missing_type_blocks(self):
        queue = MessageQueue(key=1)
        queue.send(1, b"x")
        with pytest.raises(WouldBlock):
            queue.receive(mtype=9)

    def test_capacity(self):
        queue = MessageQueue(key=1, capacity=10)
        queue.send(1, b"x" * 10)
        with pytest.raises(WouldBlock):
            queue.send(1, b"y")

    def test_invalid_type(self):
        queue = MessageQueue(key=1)
        with pytest.raises(PosixError):
            queue.send(0, b"x")

    def test_registry(self):
        registry = MessageQueueRegistry()
        q = registry.msgget(5)
        assert registry.msgget(5) is q
        registry.msgrm(5)
        with pytest.raises(NoSuchFile):
            registry.msgrm(5)


class TestSyscallSurface:
    def test_shmat_shmdt_via_syscalls(self):
        from repro.posix.syscalls import Syscalls

        kernel = Kernel()
        a = kernel.spawn("a")
        b = kernel.spawn("b")
        sys_a, sys_b = Syscalls(kernel, a), Syscalls(kernel, b)
        seg = sys_a.shmget(0xBEEF, 64 * KIB)
        addr_a = sys_a.shmat(seg)
        addr_b = sys_b.shmat(sys_b.shmget(0xBEEF, 64 * KIB))
        sys_a.poke(addr_a, b"cross-process")
        assert sys_b.peek(addr_b, 13) == b"cross-process"
        assert seg.attach_count == 2
        sys_a.shmdt(addr_a)
        assert seg.attach_count == 1

    def test_syscalls_charge_time(self):
        kernel = Kernel()
        proc = kernel.spawn("app")
        from repro.posix.syscalls import Syscalls

        sys = Syscalls(kernel, proc)
        before = kernel.clock.now
        sys.getpid()
        assert kernel.clock.now > before
