"""Unit tests for descriptor tables and open-file descriptions."""

import pytest

from repro.errors import BadFileDescriptor, PosixError
from repro.posix.fd import O_RDONLY, O_RDWR, O_WRONLY, FdTable, OpenFile


class Recorder(OpenFile):
    """Test double that records its last-close."""

    def __init__(self, flags=O_RDWR):
        super().__init__(flags=flags)
        self.closed = False

    def on_last_close(self):
        self.closed = True


class TestOpenFile:
    def test_access_mode_flags(self):
        assert OpenFile(O_RDONLY).readable
        assert not OpenFile(O_RDONLY).writable
        assert OpenFile(O_WRONLY).writable
        assert not OpenFile(O_WRONLY).readable
        assert OpenFile(O_RDWR).readable and OpenFile(O_RDWR).writable

    def test_default_io_unsupported(self):
        with pytest.raises(PosixError):
            OpenFile().read(1)
        with pytest.raises(PosixError):
            OpenFile().write(b"x")
        with pytest.raises(PosixError):
            OpenFile().seek(0)

    def test_over_release_asserts(self):
        file = Recorder()
        file.incref()
        file.decref()
        with pytest.raises(AssertionError):
            file.decref()


class TestFdTable:
    def test_lowest_free_allocation(self):
        table = FdTable()
        assert table.install(Recorder()) == 0
        assert table.install(Recorder()) == 1
        table.close(0)
        assert table.install(Recorder()) == 0

    def test_lookup_bad_fd(self):
        with pytest.raises(BadFileDescriptor):
            FdTable().lookup(5)

    def test_close_bad_fd(self):
        with pytest.raises(BadFileDescriptor):
            FdTable().close(5)

    def test_close_releases_on_last(self):
        table = FdTable()
        file = Recorder()
        fd = table.install(file)
        table.close(fd)
        assert file.closed

    def test_dup_shares_description(self):
        table = FdTable()
        file = Recorder()
        fd = table.install(file)
        dup_fd = table.dup(fd)
        assert table.lookup(dup_fd) is file
        table.close(fd)
        assert not file.closed  # dup still holds it
        table.close(dup_fd)
        assert file.closed

    def test_dup2_closes_target(self):
        table = FdTable()
        old = Recorder()
        table.install(old, fd=None)
        victim = Recorder()
        table.install(victim, fd=7)
        table.dup(0, target=7)
        assert victim.closed
        assert table.lookup(7) is table.lookup(0)

    def test_dup2_same_fd_noop(self):
        table = FdTable()
        fd = table.install(Recorder())
        assert table.dup(fd, target=fd) == fd

    def test_shared_offset_through_dup(self):
        table = FdTable()
        file = OpenFile()
        fd = table.install(file)
        dup_fd = table.dup(fd)
        table.lookup(fd).offset = 42
        assert table.lookup(dup_fd).offset == 42

    def test_fork_copy_shares_descriptions(self):
        parent = FdTable()
        file = Recorder()
        fd = parent.install(file, cloexec=True)
        child = parent.fork_copy()
        assert child.lookup(fd) is file
        assert child.entry(fd).close_on_exec
        parent.close(fd)
        assert not file.closed
        child.close(fd)
        assert file.closed

    def test_close_all(self):
        table = FdTable()
        files = [Recorder() for _ in range(3)]
        for file in files:
            table.install(file)
        table.close_all()
        assert all(f.closed for f in files)
        assert len(table) == 0

    def test_install_specific_fd_conflict(self):
        table = FdTable()
        table.install(Recorder(), fd=3)
        with pytest.raises(PosixError):
            table.install(Recorder(), fd=3)

    def test_descriptors_sorted(self):
        table = FdTable()
        table.install(Recorder(), fd=5)
        table.install(Recorder(), fd=1)
        assert table.descriptors() == [1, 5]
