"""Tests for rename and symlinks across VFS, tmpfs, and SLSFS."""

import pytest

from repro.errors import FileExists, IsADirectory, NoSuchFile, PosixError
from repro.hw.nvme import NvmeDevice
from repro.objstore.store import ObjectStore
from repro.posix.fd import O_CREAT, O_RDWR
from repro.posix.kernel import Kernel
from repro.posix.syscalls import Syscalls
from repro.posix.vnode import TmpFS, VfsNamespace
from repro.sim.clock import SimClock
from repro.slsfs.fs import SlsFS


@pytest.fixture
def sys():
    kernel = Kernel()
    return Syscalls(kernel, kernel.spawn("app"))


class TestRename:
    def test_rename_moves_content(self, sys):
        fd = sys.open("/old", O_RDWR | O_CREAT)
        sys.write(fd, b"contents")
        sys.rename("/old", "/new")
        with pytest.raises(NoSuchFile):
            sys.open("/old", O_RDWR)
        new_fd = sys.open("/new", O_RDWR)
        assert sys.read(new_fd, 8) == b"contents"

    def test_rename_across_directories(self, sys):
        sys.mkdir("/a")
        sys.mkdir("/b")
        fd = sys.open("/a/f", O_RDWR | O_CREAT)
        sys.write(fd, b"x")
        sys.rename("/a/f", "/b/g")
        assert sys.listdir("/a") == []
        assert sys.listdir("/b") == ["g"]

    def test_rename_replaces_destination(self, sys):
        fd = sys.open("/src", O_RDWR | O_CREAT)
        sys.write(fd, b"winner")
        victim = sys.open("/dst", O_RDWR | O_CREAT)
        sys.write(victim, b"loser")
        sys.rename("/src", "/dst")
        got = sys.open("/dst", O_RDWR)
        assert sys.read(got, 6) == b"winner"

    def test_open_descriptor_survives_rename(self, sys):
        fd = sys.open("/moving", O_RDWR | O_CREAT)
        sys.write(fd, b"stable")
        sys.rename("/moving", "/moved")
        sys.lseek(fd, 0)
        assert sys.read(fd, 6) == b"stable"

    def test_rename_missing_source(self, sys):
        with pytest.raises(NoSuchFile):
            sys.rename("/ghost", "/dst")

    def test_rename_directory_rejected(self, sys):
        sys.mkdir("/d")
        with pytest.raises(IsADirectory):
            sys.rename("/d", "/e")

    def test_cross_fs_rename_rejected(self, sys):
        sys.kernel.vfs.mount("/mnt", TmpFS())
        sys.open("/plain", O_RDWR | O_CREAT)
        with pytest.raises(PosixError):
            sys.rename("/plain", "/mnt/elsewhere")


class TestSymlinks:
    def test_symlink_resolves_on_open(self, sys):
        fd = sys.open("/real", O_RDWR | O_CREAT)
        sys.write(fd, b"through the link")
        sys.symlink("/real", "/alias")
        via = sys.open("/alias", O_RDWR)
        assert sys.read(via, 16) == b"through the link"

    def test_readlink(self, sys):
        sys.symlink("/target/path", "/link")
        assert sys.readlink("/link") == "/target/path"

    def test_readlink_non_symlink(self, sys):
        sys.open("/plain", O_RDWR | O_CREAT)
        with pytest.raises(PosixError):
            sys.readlink("/plain")

    def test_symlink_to_directory_component(self, sys):
        sys.mkdir("/deep")
        fd = sys.open("/deep/file", O_RDWR | O_CREAT)
        sys.write(fd, b"found")
        sys.symlink("/deep", "/shortcut")
        via = sys.open("/shortcut/file", O_RDWR)
        assert sys.read(via, 5) == b"found"

    def test_dangling_symlink_open_fails(self, sys):
        sys.symlink("/nowhere", "/dangling")
        with pytest.raises(NoSuchFile):
            sys.open("/dangling", O_RDWR)

    def test_symlink_loop_detected(self, sys):
        sys.symlink("/b", "/a")
        sys.symlink("/a", "/b")
        with pytest.raises(PosixError):
            sys.open("/a", O_RDWR)

    def test_relative_symlink(self, sys):
        sys.mkdir("/dir")
        fd = sys.open("/dir/real", O_RDWR | O_CREAT)
        sys.write(fd, b"rel")
        sys.symlink("real", "/dir/rel-link")
        via = sys.open("/dir/rel-link", O_RDWR)
        assert sys.read(via, 3) == b"rel"

    def test_duplicate_symlink_name(self, sys):
        sys.symlink("/x", "/link")
        with pytest.raises(FileExists):
            sys.symlink("/y", "/link")


class TestSlsfsParity:
    @pytest.fixture
    def slsfs_world(self):
        store = ObjectStore(NvmeDevice(SimClock()))
        fs = SlsFS(store)
        return fs, VfsNamespace(fs), store

    def test_slsfs_rename(self, slsfs_world):
        fs, vfs, store = slsfs_world
        handle = vfs.open("/old", O_RDWR | O_CREAT)
        handle.write(b"data")
        vfs.rename("/old", "/new")
        assert vfs.listdir("/") == ["new"]
        assert vfs.open("/new", O_RDWR).read(4) == b"data"

    def test_slsfs_symlink_survives_crash(self, slsfs_world):
        fs, vfs, store = slsfs_world
        handle = vfs.open("/real", O_RDWR | O_CREAT)
        handle.write(b"persisted")
        vfs.symlink("/real", "/alias")
        fs.sync()
        store.device.flush_barrier()
        store.device.crash()
        fresh_store = ObjectStore(store.device)
        fresh_store.recover()
        fs2 = SlsFS.recover(fresh_store)
        vfs2 = VfsNamespace(fs2)
        assert vfs2.readlink("/alias") == "/real"
        assert vfs2.open("/alias", O_RDWR).read(9) == b"persisted"
