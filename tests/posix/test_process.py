"""Unit tests for processes, threads, and the process table."""

import pytest

from repro.errors import NoSuchProcess, PosixError
from repro.posix.kernel import Kernel
from repro.posix.process import ProcessState, ThreadState
from repro.posix.signals import SIGKILL, SIGSTOP, SIGUSR1


@pytest.fixture
def kernel():
    return Kernel()


class TestLifecycle:
    def test_spawn_assigns_pid_and_parent(self, kernel):
        proc = kernel.spawn("worker")
        assert proc.pid > kernel.init.pid
        assert proc.parent is kernel.init
        assert proc in kernel.init.children

    def test_spawn_registers_objects(self, kernel):
        proc = kernel.spawn("worker")
        assert kernel.registry.get(proc.koid) is proc
        assert kernel.registry.get(proc.main_thread.koid) is proc.main_thread

    def test_fork_duplicates_cpu_state(self, kernel):
        parent = kernel.spawn("app")
        parent.main_thread.cpu.rip = 0xCAFE
        parent.main_thread.cpu.gp["rax"] = 42
        child = kernel.fork(parent)
        assert child.main_thread.cpu.rip == 0xCAFE
        assert child.main_thread.cpu.gp["rax"] == 42
        child.main_thread.cpu.gp["rax"] = 7
        assert parent.main_thread.cpu.gp["rax"] == 42

    def test_fork_does_not_inherit_pending_signals(self, kernel):
        parent = kernel.spawn("app")
        parent.signals.send(SIGUSR1)
        child = kernel.fork(parent)
        assert child.signals.pending == []

    def test_exit_and_reap(self, kernel):
        proc = kernel.spawn("app")
        kernel.exit(proc, status=3)
        assert proc.state is ProcessState.ZOMBIE
        assert kernel.reap(proc) == 3
        assert kernel.procs.get(proc.pid) is None

    def test_exit_reparents_children_to_init(self, kernel):
        parent = kernel.spawn("app")
        child = kernel.fork(parent)
        kernel.exit(parent)
        assert child.parent is kernel.init

    def test_reap_non_zombie_rejected(self, kernel):
        proc = kernel.spawn("app")
        with pytest.raises(NoSuchProcess):
            kernel.reap(proc)

    def test_init_cannot_exit(self, kernel):
        with pytest.raises(PosixError):
            kernel.exit(kernel.init)

    def test_walk_tree_depth_first(self, kernel):
        root = kernel.spawn("root")
        c1 = kernel.fork(root)
        c2 = kernel.fork(root)
        gc1 = kernel.fork(c1)
        pids = [p.pid for p in root.walk_tree()]
        assert pids == [root.pid, c1.pid, gc1.pid, c2.pid]


class TestThreads:
    def test_stop_resume_all(self, kernel):
        proc = kernel.spawn("app")
        proc.spawn_thread()
        stopped = proc.stop_all_threads()
        assert stopped == 2
        assert all(t.state is ThreadState.STOPPED for t in proc.threads)
        assert proc.state is ProcessState.STOPPED
        proc.resume_all_threads()
        assert all(t.state is ThreadState.RUNNING for t in proc.threads)
        assert proc.state is ProcessState.ALIVE

    def test_unique_tids(self, kernel):
        proc = kernel.spawn("app")
        t2 = proc.spawn_thread()
        assert t2.tid != proc.main_thread.tid


class TestSignals:
    def test_send_and_take(self, kernel):
        proc = kernel.spawn("app")
        kernel.kill(proc.pid, SIGUSR1)
        assert proc.signals.take() == SIGUSR1
        assert proc.signals.take() is None

    def test_blocked_signal_not_deliverable(self, kernel):
        proc = kernel.spawn("app")
        proc.signals.block(SIGUSR1)
        proc.signals.send(SIGUSR1)
        assert proc.signals.deliverable() == []
        proc.signals.unblock(SIGUSR1)
        assert proc.signals.deliverable() == [SIGUSR1]

    def test_kill_and_stop_uncatchable(self, kernel):
        proc = kernel.spawn("app")
        with pytest.raises(ValueError):
            proc.signals.set_handler(SIGKILL, "ignore")
        with pytest.raises(ValueError):
            proc.signals.block(SIGSTOP)

    def test_duplicate_pending_collapsed(self, kernel):
        proc = kernel.spawn("app")
        proc.signals.send(SIGUSR1)
        proc.signals.send(SIGUSR1)
        assert proc.signals.pending == [SIGUSR1]

    def test_kill_unknown_pid(self, kernel):
        with pytest.raises(NoSuchProcess):
            kernel.kill(9999, SIGUSR1)


class TestContainers:
    def test_container_membership(self, kernel):
        box = kernel.create_container("jail0")
        proc = kernel.spawn("inmate", container=box)
        assert proc.pid in box.member_pids
        assert kernel.container_processes(box) == [proc]

    def test_fork_stays_in_container(self, kernel):
        box = kernel.create_container("jail0")
        parent = kernel.spawn("inmate", container=box)
        child = kernel.fork(parent)
        assert child.pid in box.member_pids

    def test_exit_leaves_container(self, kernel):
        box = kernel.create_container("jail0")
        proc = kernel.spawn("inmate", container=box)
        kernel.exit(proc)
        assert proc.pid not in box.member_pids


class TestProcessTable:
    def test_force_pid_for_restore(self, kernel):
        pid = kernel.procs.force_pid(500)
        assert pid == 500
        # Next allocation skips past it.
        assert kernel.procs.allocate_pid() == 501

    def test_force_existing_pid_rejected(self, kernel):
        proc = kernel.spawn("app")
        with pytest.raises(NoSuchProcess):
            kernel.procs.force_pid(proc.pid)
