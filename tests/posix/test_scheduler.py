"""Tests for the cooperative scheduler."""

import pytest

from repro.core.backends import make_disk_backend
from repro.core.orchestrator import SLS
from repro.errors import PosixError
from repro.hw.nvme import NvmeDevice
from repro.posix.kernel import Kernel
from repro.posix.scheduler import Scheduler
from repro.posix.syscalls import Syscalls
from repro.units import GIB, KIB, MSEC, USEC


@pytest.fixture
def kernel():
    return Kernel(memory_bytes=4 * GIB)


@pytest.fixture
def sched(kernel):
    return Scheduler(kernel)


class TestScheduling:
    def test_steps_run_and_charge_time(self, kernel, sched):
        proc = kernel.spawn("worker")
        ticks = []
        sched.register(proc, lambda: ticks.append(kernel.clock.now))
        before = kernel.clock.now
        executed = sched.run_for(1 * MSEC)
        assert executed == len(ticks) == 10  # 1 ms / 100 µs slices
        assert kernel.clock.now >= before + 1 * MSEC

    def test_round_robin_fairness(self, kernel, sched):
        a, b = kernel.spawn("a"), kernel.spawn("b")
        counts = {"a": 0, "b": 0}
        sched.register(a, lambda: counts.__setitem__("a", counts["a"] + 1))
        sched.register(b, lambda: counts.__setitem__("b", counts["b"] + 1))
        sched.run_for(2 * MSEC)
        assert abs(counts["a"] - counts["b"]) <= 1

    def test_step_returning_false_finishes(self, kernel, sched):
        proc = kernel.spawn("oneshot")
        runs = []

        def step():
            runs.append(1)
            return False

        sched.register(proc, step)
        sched.run_for(1 * MSEC)
        assert len(runs) == 1
        assert sched.runnable == 0

    def test_dead_process_retired(self, kernel, sched):
        proc = kernel.spawn("doomed")
        sched.register(proc, lambda: None)
        kernel.exit(proc)
        assert sched.run_for(500 * USEC) == 0

    def test_register_dead_process_rejected(self, kernel, sched):
        proc = kernel.spawn("gone")
        kernel.exit(proc)
        with pytest.raises(PosixError):
            sched.register(proc, lambda: None)

    def test_deschedule(self, kernel, sched):
        proc = kernel.spawn("app")
        sched.register(proc, lambda: None)
        sched.register(proc, lambda: None)
        assert sched.deschedule(proc) == 2
        assert sched.runnable == 0

    def test_idle_advances_to_deadline(self, kernel, sched):
        before = kernel.clock.now
        sched.run_for(1 * MSEC)
        assert kernel.clock.now >= before + 1 * MSEC


class TestBarrierIntegration:
    def test_stopped_process_gets_no_cpu(self, kernel, sched):
        proc = kernel.spawn("app")
        runs = []
        sched.register(proc, lambda: runs.append(1))
        proc.stop_all_threads()
        sched.run_for(1 * MSEC)
        assert runs == []
        proc.resume_all_threads()
        sched.run_for(1 * MSEC)
        assert runs

    def test_app_runs_through_periodic_checkpoints(self, kernel, sched):
        """The paradigm shot: the app computes continuously while
        Aurora checkpoints it 100x/sec underneath."""
        sls = SLS(kernel)
        proc = kernel.spawn("app")
        sys = Syscalls(kernel, proc)
        entry = sys.mmap(64 * KIB, name="heap")
        counter = [0]

        def step():
            counter[0] += 1
            sys.poke(entry.start, b"step-%06d" % counter[0])

        sched.register(proc, step)
        group = sls.persist(proc, period_ns=10 * MSEC, auto_checkpoint=True)
        group.attach(make_disk_backend(kernel, NvmeDevice(kernel.clock)))
        sched.run_for(100 * MSEC)
        sls.barrier(group)
        assert group.stats.checkpoints_taken >= 8
        assert counter[0] > 500  # the app made real progress
        # The last durable image holds a consistent recent state.
        procs, _ = sls.restore(group.latest_image, new_instance=True,
                               name_suffix="-r")
        snap = Syscalls(kernel, procs[0]).peek(entry.start, 11)
        assert snap.startswith(b"step-")
