"""Unit tests for the VFS layer and tmpfs."""

import pytest

from repro.errors import (
    DirectoryNotEmpty,
    FileExists,
    IsADirectory,
    NoSuchFile,
    NotADirectory,
    PosixError,
)
from repro.posix.fd import O_APPEND, O_CREAT, O_EXCL, O_RDONLY, O_RDWR, O_TRUNC
from repro.posix.vnode import TmpFS, VfsNamespace, VnodeType


@pytest.fixture
def vfs():
    return VfsNamespace(TmpFS())


class TestPathResolution:
    def test_create_and_stat(self, vfs):
        vfs.open("/file.txt", O_RDWR | O_CREAT)
        vnode = vfs.stat("/file.txt")
        assert vnode.vtype is VnodeType.REGULAR

    def test_nested_directories(self, vfs):
        vfs.mkdir("/a")
        vfs.mkdir("/a/b")
        vfs.open("/a/b/c.txt", O_RDWR | O_CREAT)
        assert vfs.listdir("/a/b") == ["c.txt"]

    def test_normalization(self, vfs):
        vfs.mkdir("/dir")
        vfs.open("/dir/../dir/./file", O_RDWR | O_CREAT)
        assert vfs.listdir("/dir") == ["file"]

    def test_relative_path_rejected(self, vfs):
        with pytest.raises(PosixError):
            vfs.open("relative.txt", O_RDWR | O_CREAT)

    def test_missing_file(self, vfs):
        with pytest.raises(NoSuchFile):
            vfs.open("/ghost", O_RDWR)

    def test_component_not_a_directory(self, vfs):
        vfs.open("/plain", O_RDWR | O_CREAT)
        with pytest.raises(NotADirectory):
            vfs.open("/plain/below", O_RDWR | O_CREAT)


class TestOpenFlags:
    def test_excl_on_existing(self, vfs):
        vfs.open("/f", O_RDWR | O_CREAT)
        with pytest.raises(FileExists):
            vfs.open("/f", O_RDWR | O_CREAT | O_EXCL)

    def test_trunc_clears_content(self, vfs):
        f = vfs.open("/f", O_RDWR | O_CREAT)
        f.write(b"content")
        g = vfs.open("/f", O_RDWR | O_TRUNC)
        assert g.vnode.size == 0

    def test_append_mode(self, vfs):
        f = vfs.open("/f", O_RDWR | O_CREAT | O_APPEND)
        f.write(b"one")
        f.seek(0)
        f.write(b"two")  # O_APPEND forces the end
        f.seek(0)
        assert f.read(6) == b"onetwo"

    def test_readonly_blocks_write(self, vfs):
        vfs.open("/f", O_RDWR | O_CREAT)
        f = vfs.open("/f", O_RDONLY)
        with pytest.raises(PosixError):
            f.write(b"x")


class TestFileIo:
    def test_offset_tracking(self, vfs):
        f = vfs.open("/f", O_RDWR | O_CREAT)
        f.write(b"hello world")
        f.seek(6)
        assert f.read(5) == b"world"

    def test_sparse_write(self, vfs):
        f = vfs.open("/f", O_RDWR | O_CREAT)
        f.seek(100)
        f.write(b"x")
        f.seek(0)
        assert f.read(100) == b"\x00" * 100

    def test_read_past_eof(self, vfs):
        f = vfs.open("/f", O_RDWR | O_CREAT)
        f.write(b"ab")
        f.seek(0)
        assert f.read(100) == b"ab"

    def test_negative_seek_rejected(self, vfs):
        f = vfs.open("/f", O_RDWR | O_CREAT)
        with pytest.raises(PosixError):
            f.seek(-1)


class TestLinks:
    def test_unlink_removes_entry(self, vfs):
        vfs.open("/f", O_RDWR | O_CREAT)
        vfs.unlink("/f")
        with pytest.raises(NoSuchFile):
            vfs.stat("/f")

    def test_hard_link_shares_content(self, vfs):
        fs = vfs.mounts()["/"]
        f = vfs.open("/orig", O_RDWR | O_CREAT)
        f.write(b"shared")
        fs.link(fs.root(), "alias", f.vnode)
        g = vfs.open("/alias", O_RDWR)
        assert g.read(6) == b"shared"
        assert f.vnode.nlink == 2

    def test_unlink_one_link_keeps_other(self, vfs):
        fs = vfs.mounts()["/"]
        f = vfs.open("/orig", O_RDWR | O_CREAT)
        f.write(b"data")
        fs.link(fs.root(), "alias", f.vnode)
        vfs.unlink("/orig")
        assert vfs.open("/alias", O_RDWR).read(4) == b"data"

    def test_rmdir_requires_empty(self, vfs):
        vfs.mkdir("/d")
        vfs.open("/d/f", O_RDWR | O_CREAT)
        with pytest.raises(DirectoryNotEmpty):
            vfs.unlink("/d")
        vfs.unlink("/d/f")
        vfs.unlink("/d")

    def test_directory_io_rejected(self, vfs):
        vfs.mkdir("/d")
        vnode = vfs.stat("/d")
        fs = vfs.mounts()["/"]
        with pytest.raises(IsADirectory):
            fs.read(vnode, 0, 1)
        with pytest.raises(IsADirectory):
            fs.write(vnode, 0, b"x")


class TestAnonymousFiles:
    def test_unlinked_but_open_content_readable(self, vfs):
        f = vfs.open("/scratch", O_RDWR | O_CREAT)
        f.write(b"still here")
        vfs.unlink("/scratch")
        assert f.vnode.anonymous
        f.seek(0)
        assert f.read(10) == b"still here"

    def test_reclaimed_on_last_close(self, vfs):
        from repro.posix.fd import FdTable

        fs = vfs.mounts()["/"]
        table = FdTable()
        f = vfs.open("/scratch", O_RDWR | O_CREAT)
        fd = table.install(f)
        dup_fd = table.dup(fd)
        f.write(b"x")
        ino = f.vnode.ino
        vfs.unlink("/scratch")
        table.close(fd)  # one descriptor remains
        assert ino in fs._data
        table.close(dup_fd)  # last close reclaims the anonymous file
        assert ino not in fs._data


class TestMounts:
    def test_mount_and_route(self, vfs):
        other = TmpFS()
        vfs.mount("/mnt", other)
        vfs.open("/mnt/inner", O_RDWR | O_CREAT)
        assert other.readdir(other.root()) == ["inner"]
        # Root fs unaffected.
        assert "inner" not in vfs.listdir("/")

    def test_longest_prefix_wins(self, vfs):
        outer, inner = TmpFS(), TmpFS()
        vfs.mount("/a", outer)
        vfs.mount("/a/b", inner)
        vfs.open("/a/b/f", O_RDWR | O_CREAT)
        assert inner.readdir(inner.root()) == ["f"]

    def test_unmount_root_rejected(self, vfs):
        with pytest.raises(PosixError):
            vfs.unmount("/")

    def test_mount_busy(self, vfs):
        vfs.mount("/m", TmpFS())
        with pytest.raises(FileExists):
            vfs.mount("/m", TmpFS())

    def test_tmpfs_crash_loses_data(self, vfs):
        fs = vfs.mounts()["/"]
        f = vfs.open("/f", O_RDWR | O_CREAT)
        f.write(b"volatile")
        fs.crash()
        assert vfs.listdir("/") == []
