"""Unit tests for the network link model."""

import pytest

from repro.errors import HardwareError
from repro.hw.netdev import NetworkLink
from repro.hw.specs import TEN_GBE
from repro.sim.clock import SimClock
from repro.units import KIB, MIB


@pytest.fixture
def link():
    return NetworkLink(SimClock())


@pytest.fixture
def pair(link):
    return link.attach("alpha"), link.attach("beta")


class TestTransmission:
    def test_roundtrip(self, link, pair):
        alpha, beta = pair
        alpha.send("beta", b"hello")
        message = beta.receive()
        assert message.payload == b"hello"
        assert message.sender == "alpha"

    def test_latency_charged(self, link, pair):
        alpha, beta = pair
        message = alpha.send("beta", b"x")
        assert message.arrives_at >= TEN_GBE.latency_ns

    def test_bandwidth_term(self, link, pair):
        alpha, beta = pair
        small = alpha.send("beta", b"x" * KIB)
        large = alpha.send("beta", b"x" * MIB)
        assert (large.arrives_at - large.sent_at) > (small.arrives_at - small.sent_at)

    def test_receive_waits_for_arrival(self, link, pair):
        alpha, beta = pair
        message = alpha.send("beta", b"data")
        assert link.clock.now < message.arrives_at
        beta.receive(wait=True)
        assert link.clock.now >= message.arrives_at

    def test_receive_nowait_returns_none_before_arrival(self, link, pair):
        alpha, beta = pair
        alpha.send("beta", b"data")
        assert beta.receive(wait=False) is None

    def test_in_order_delivery(self, link, pair):
        alpha, beta = pair
        alpha.send("beta", b"1")
        alpha.send("beta", b"2")
        assert beta.receive().payload == b"1"
        assert beta.receive().payload == b"2"

    def test_unknown_endpoint_rejected(self, link, pair):
        alpha, _ = pair
        with pytest.raises(HardwareError):
            alpha.send("nobody", b"x")

    def test_wire_serialization(self, link, pair):
        # Two large messages share the wire: second arrives later than
        # it would alone.
        alpha, beta = pair
        solo_link = NetworkLink(SimClock())
        a2 = solo_link.attach("a")
        solo_link.attach("b")
        solo = a2.send("b", b"x" * MIB)
        alpha.send("beta", b"x" * MIB)
        second = alpha.send("beta", b"x" * MIB)
        assert (second.arrives_at - second.sent_at) > (solo.arrives_at - solo.sent_at)

    def test_stats(self, link, pair):
        alpha, beta = pair
        alpha.send("beta", b"abc")
        assert link.messages_carried == 1
        assert link.bytes_carried == 3
