"""The queue-depth-aware submission model (batched checkpoint I/O)."""

import pytest

from repro.errors import DeviceIOError, PowerCut
from repro.fault import names as fault_names
from repro.fault.registry import FailpointRegistry, FaultAction
from repro.hw.device import BatchWrite
from repro.hw.nvme import NvmeDevice
from repro.hw.specs import (
    NVME_COMMAND_OVERHEAD_NS,
    NVME_SUBMIT_NS,
    OPTANE_900P,
    with_queue_model,
)
from repro.sim.clock import SimClock
from repro.units import KIB


@pytest.fixture
def clock():
    return SimClock()


def qdev(clock, queue_depth=8):
    return NvmeDevice(clock, queue_depth=queue_depth)


class TestSpecHelpers:
    def test_with_queue_model_arms_all_three_fields(self):
        spec = with_queue_model(OPTANE_900P, 8)
        assert spec.queue_depth == 8
        assert spec.submit_cost_ns == NVME_SUBMIT_NS
        assert spec.command_overhead_ns == NVME_COMMAND_OVERHEAD_NS

    def test_defaults_leave_legacy_model(self):
        assert OPTANE_900P.queue_depth == 0
        assert OPTANE_900P.submit_cost_ns == 0
        assert OPTANE_900P.command_overhead_ns == 0

    def test_negative_queue_depth_rejected(self):
        with pytest.raises(ValueError):
            with_queue_model(OPTANE_900P, -1)

    def test_nvme_device_opt_in_kwarg(self, clock):
        assert qdev(clock, 4).spec.queue_depth == 4
        assert NvmeDevice(clock).spec.queue_depth == 0


class TestDoorbells:
    def test_each_async_write_rings_one_doorbell(self, clock):
        dev = qdev(clock)
        for i in range(5):
            dev.write_async(i * KIB, b"x" * 100)
        assert dev.stats.doorbells == 5

    def test_batch_rings_one_doorbell_for_many_commands(self, clock):
        dev = qdev(clock)
        writes = [BatchWrite(offset=i * KIB, data=b"x" * 100) for i in range(8)]
        tickets = dev.write_batch(writes)
        assert len(tickets) == 8
        assert dev.stats.doorbells == 1
        assert dev.stats.batched_writes == 8
        assert dev.stats.writes == 8

    def test_doorbell_cost_charged_to_submitter(self, clock):
        dev = qdev(clock)
        before = clock.now
        dev.write_batch([BatchWrite(offset=0, data=b"a")])
        # One submission cost regardless of command count; the media
        # latency is NOT waited for (async).
        assert clock.now - before == NVME_SUBMIT_NS

    def test_unbatched_submission_costs_scale_per_write(self, clock):
        dev = qdev(clock)
        before = clock.now
        for i in range(10):
            dev.write_async(i * KIB, b"a")
        assert clock.now - before >= 10 * NVME_SUBMIT_NS

    def test_empty_batch_is_free(self, clock):
        dev = qdev(clock)
        assert dev.write_batch([]) == []
        assert dev.stats.doorbells == 0


class TestQueueDepth:
    def test_submitter_stalls_when_queue_full(self, clock):
        dev = qdev(clock, queue_depth=2)
        for i in range(8):
            dev.write_async(i * 8 * KIB, b"y" * 4096)
        assert dev.stats.submit_stall_ns > 0

    def test_unbounded_queue_never_stalls(self, clock):
        dev = NvmeDevice(clock)  # legacy: queue_depth 0
        for i in range(64):
            dev.write_async(i * 8 * KIB, b"y" * 4096)
        assert dev.stats.submit_stall_ns == 0

    def test_deeper_queue_finishes_no_later(self, clock):
        def last_completion(depth):
            c = SimClock()
            dev = NvmeDevice(c, queue_depth=depth)
            tickets = [
                dev.write_async(i * 8 * KIB, b"z" * 4096) for i in range(32)
            ]
            return tickets[-1].completes_at

        assert last_completion(16) <= last_completion(1)

    def test_fifo_completion_order_preserved(self, clock):
        # The crash oracle's strict prefix consistency relies on this.
        dev = qdev(clock, queue_depth=4)
        tickets = dev.write_batch(
            [BatchWrite(offset=i * 8 * KIB, data=b"w" * 4096) for i in range(16)]
        )
        completions = [t.completes_at for t in tickets]
        assert completions == sorted(completions)

    def test_crash_clears_inflight_queue(self, clock):
        dev = qdev(clock, queue_depth=2)
        for i in range(6):
            dev.write_async(i * 8 * KIB, b"q" * 4096)
        dev.crash()
        assert all(queue == [] for queue in dev._inflight)
        # Post-crash submissions start from an empty queue: no stall.
        stall_before = dev.stats.submit_stall_ns
        dev.write_async(0, b"fresh")
        assert dev.stats.submit_stall_ns == stall_before


class TestBatchSemantics:
    def test_batch_data_lands_on_media(self, clock):
        dev = qdev(clock)
        dev.write_batch(
            [
                BatchWrite(offset=0, data=b"alpha"),
                BatchWrite(offset=100, data=b"beta"),
            ]
        )
        assert dev.read(0, 5) == b"alpha"
        assert dev.read(100, 4) == b"beta"

    def test_batch_members_not_durable_until_completion(self, clock):
        dev = qdev(clock)
        tickets = dev.write_batch([BatchWrite(offset=0, data=b"gone")])
        assert clock.now < tickets[0].completes_at
        lost = dev.crash()
        assert lost == 1
        assert dev.read(0, 4) == b"\x00" * 4

    def test_logical_nbytes_inflates_transfer_time(self, clock):
        dev = qdev(clock)
        small = dev.write_batch([BatchWrite(offset=0, data=b"x")])
        big = dev.write_batch(
            [BatchWrite(offset=8 * KIB, data=b"x", logical_nbytes=256 * KIB)]
        )
        assert big[0].latency_ns > small[0].latency_ns

    def test_identical_timing_between_single_and_batch_of_one(self):
        c1, c2 = SimClock(), SimClock()
        d1 = NvmeDevice(c1, queue_depth=8)
        d2 = NvmeDevice(c2, queue_depth=8)
        t1 = d1.write_async(0, b"same" * 100)
        t2 = d2.write_batch([BatchWrite(offset=0, data=b"same" * 100)])[0]
        assert (t1.issued_at, t1.completes_at) == (t2.issued_at, t2.completes_at)


class TestBatchFailpoint:
    def arm(self, clock, dev, action, **kwargs):
        registry = FailpointRegistry(clock=clock, seed=1)
        dev.attach_faults(registry)
        registry.arm(fault_names.FP_DEVICE_BATCH, action, **kwargs)
        return registry

    def test_fail_raises_before_any_member_lands(self, clock):
        dev = qdev(clock)
        self.arm(clock, dev, FaultAction("fail"))
        with pytest.raises(DeviceIOError):
            dev.write_batch([BatchWrite(offset=0, data=b"never")])
        assert dev.stats.writes == 0
        assert dev.read(0, 5) == b"\x00" * 5

    def test_crash_at_batch_boundary_is_power_cut(self, clock):
        dev = qdev(clock)
        self.arm(clock, dev, FaultAction("crash"))
        with pytest.raises(PowerCut):
            dev.write_batch([BatchWrite(offset=0, data=b"never")])
        assert dev.stats.writes == 0

    def test_member_commands_still_fire_device_write(self, clock):
        dev = qdev(clock)
        registry = FailpointRegistry(clock=clock, seed=1)
        dev.attach_faults(registry)
        point = registry.arm(
            fault_names.FP_DEVICE_WRITE, FaultAction("fail"),
            after=10 ** 9, count=1,
        )
        dev.write_batch(
            [BatchWrite(offset=i * KIB, data=b"m") for i in range(7)]
        )
        assert point.seen == 7


class TestLegacyBehaviourUnchanged:
    def test_disarmed_spec_write_async_advances_nothing(self, clock):
        dev = NvmeDevice(clock)
        before = clock.now
        dev.write_async(0, b"free submit")
        assert clock.now == before

    def test_disarmed_batch_timing_equals_async_writes(self):
        c1, c2 = SimClock(), SimClock()
        d1, d2 = NvmeDevice(c1), NvmeDevice(c2)
        singles = [d1.write_async(i * KIB, b"s" * 512) for i in range(4)]
        batched = d2.write_batch(
            [BatchWrite(offset=i * KIB, data=b"s" * 512) for i in range(4)]
        )
        assert [t.completes_at for t in singles] == [
            t.completes_at for t in batched
        ]
