"""Sanity tests on the calibrated device and CPU cost models."""

from repro.hw.specs import (
    DEFAULT_CPU,
    DRAM,
    NAND_SSD,
    NVDIMM_SPEC,
    OPTANE_900P,
    SPINNING_DISK,
    TEN_GBE,
)
from repro.units import GIB, USEC


class TestDeviceSpecs:
    def test_optane_matches_paper_hardware(self):
        # The paper's testbed: Intel Optane 900P, ~10 µs access.
        assert OPTANE_900P.read_latency_ns == 10 * USEC
        assert OPTANE_900P.persistent

    def test_latency_ordering_across_generations(self):
        # DRAM < NVDIMM < Optane < NAND(read) < HDD
        chain = (DRAM, NVDIMM_SPEC, OPTANE_900P, NAND_SSD, SPINNING_DISK)
        latencies = [spec.read_latency_ns for spec in chain]
        assert latencies == sorted(latencies)

    def test_byte_addressability_flags(self):
        assert NVDIMM_SPEC.byte_addressable
        assert DRAM.byte_addressable
        assert not OPTANE_900P.byte_addressable

    def test_only_dram_is_volatile(self):
        assert not DRAM.persistent
        for spec in (NVDIMM_SPEC, OPTANE_900P, NAND_SSD, SPINNING_DISK):
            assert spec.persistent

    def test_ten_gbe_line_rate(self):
        assert TEN_GBE.bandwidth == 1.25 * GIB


class TestCpuCostModel:
    def test_table3_arithmetic(self):
        """The calibration identities behind Table 3 must hold: full
        lazy copy = resident pages x arm cost; incremental = dirty
        pages x incremental arm cost."""
        pages_2gib = (2 * GIB) // 4096
        full_us = pages_2gib * DEFAULT_CPU.pte_cow_arm_ns / 1000
        assert abs(full_us - 5145.9) < 15  # paper: 5145.9 us
        dirty = pages_2gib // 10
        incr_us = dirty * DEFAULT_CPU.pte_cow_arm_incr_ns / 1000
        assert abs(incr_us - 711.1) < 15  # paper: 711.1 us

    def test_incremental_arm_costs_more_per_page(self):
        # List processing on top of the PTE arm itself.
        assert DEFAULT_CPU.pte_cow_arm_incr_ns > DEFAULT_CPU.pte_cow_arm_ns

    def test_cow_fault_dwarfs_arming(self):
        # Servicing a fault (allocate + copy 4 KiB) is ~250x arming one
        # PTE — why arming everything beats copying anything.
        assert DEFAULT_CPU.cow_fault_ns > 100 * DEFAULT_CPU.pte_cow_arm_ns

    def test_frozen_model_immutable(self):
        import dataclasses

        import pytest

        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_CPU.syscall_ns = 0  # type: ignore[misc]
