"""The multi-queue device model: per-queue channels, per-queue
stats, the release_ns ordering barrier, and crash semantics."""

import pytest

from repro.errors import DeviceIOError
from repro.hw.nvme import NvmeDevice
from repro.hw.specs import NVME_SUBMIT_NS, OPTANE_900P, with_queue_model
from repro.sim.clock import SimClock
from repro.units import MIB


@pytest.fixture
def clock():
    return SimClock()


def mqdev(clock, num_queues=4, queue_depth=8):
    return NvmeDevice(clock, queue_depth=queue_depth, num_queues=num_queues)


class TestSpec:
    def test_with_queue_model_arms_num_queues(self):
        spec = with_queue_model(OPTANE_900P, 8, num_queues=4)
        assert spec.num_queues == 4

    def test_default_is_single_queue(self):
        assert OPTANE_900P.num_queues == 1
        assert with_queue_model(OPTANE_900P, 8).num_queues == 1

    def test_zero_queues_rejected(self):
        with pytest.raises(ValueError):
            with_queue_model(OPTANE_900P, 8, num_queues=0)

    def test_nvme_device_opt_in_kwarg(self, clock):
        dev = mqdev(clock, num_queues=4)
        assert dev.num_queues == 4
        assert dev.spec.num_queues == 4
        assert NvmeDevice(clock).num_queues == 1


class TestParallelism:
    def test_distinct_queues_overlap_transfers(self, clock):
        # Two 1 MiB writes on different queues complete one doorbell
        # cost apart — their media transfers run fully in parallel.
        dev = mqdev(clock, num_queues=2)
        a = dev.write_async(0, b"x" * MIB, queue=0)
        b = dev.write_async(2 * MIB, b"y" * MIB, queue=1)
        assert b.completes_at - a.completes_at == NVME_SUBMIT_NS

    def test_same_queue_serializes_transfers(self, clock):
        dev = mqdev(clock, num_queues=2)
        a = dev.write_async(0, b"x" * MIB, queue=0)
        b = dev.write_async(2 * MIB, b"y" * MIB, queue=0)
        # The second command waits for the first's transfer, not just
        # the doorbell: the channel serialization point is per queue.
        assert b.completes_at - a.completes_at > NVME_SUBMIT_NS

    def test_four_queues_drain_faster_than_one(self):
        def drain(num_queues):
            clock = SimClock()
            dev = mqdev(clock, num_queues=num_queues)
            for i in range(8):
                dev.write_async(i * MIB, b"d" * MIB, queue=i % num_queues)
            return dev.pending_deadline() - clock.now

        assert drain(4) < drain(1)

    def test_reads_overlap_across_queues(self, clock):
        dev = mqdev(clock, num_queues=2)
        dev.write(0, b"a" * MIB)
        dev.write(2 * MIB, b"b" * MIB)
        t0, _ = dev.read_async(0, MIB, queue=0)
        t1, _ = dev.read_async(2 * MIB, MIB, queue=1)
        assert t1.completes_at - t0.completes_at == NVME_SUBMIT_NS

    def test_queue_depth_window_is_per_queue(self, clock):
        # qd=1 forces strictly serial commands within a queue, but two
        # queues still give two independent in-flight windows.
        dev = mqdev(clock, num_queues=2, queue_depth=1)
        dev.write_async(0, b"x" * MIB, queue=0)
        stall_before = dev.stats.submit_stall_ns
        dev.write_async(2 * MIB, b"y" * MIB, queue=1)
        assert dev.stats.submit_stall_ns == stall_before
        dev.write_async(4 * MIB, b"z" * MIB, queue=1)
        assert dev.stats.submit_stall_ns > stall_before
        assert dev.stats.queues[1].submit_stall_ns > 0
        assert dev.stats.queues[0].submit_stall_ns == 0


class TestReleaseBarrier:
    def test_release_ns_orders_after_other_queues(self, clock):
        dev = mqdev(clock, num_queues=2)
        big = dev.write_async(0, b"x" * MIB, queue=1)
        sb = dev.write_async(
            4 * MIB, b"s" * 128, queue=0, release_ns=dev.pending_deadline()
        )
        # The small queue-0 write starts only once the queue-1 MiB is
        # durable — cross-queue FIFO does not hold, the barrier does.
        assert sb.completes_at > big.completes_at

    def test_without_barrier_small_write_races_ahead(self, clock):
        dev = mqdev(clock, num_queues=2)
        big = dev.write_async(0, b"x" * MIB, queue=1)
        sb = dev.write_async(4 * MIB, b"s" * 128, queue=0)
        assert sb.completes_at < big.completes_at

    def test_crash_between_barrier_and_completion_tears_it(self, clock):
        dev = mqdev(clock, num_queues=2)
        big = dev.write_async(0, b"x" * MIB, queue=1)
        sb = dev.write_async(
            4 * MIB, b"s" * 128, queue=0, release_ns=dev.pending_deadline()
        )
        clock.advance_to(big.completes_at)
        dev.crash()
        # The record is durable; the barriered write was still in
        # flight and reads back as stale zeros.
        assert dev.read(0, 4) == b"xxxx"
        assert dev.read(4 * MIB, 4) == b"\x00" * 4


class TestAccounting:
    def test_per_queue_counters_sum_to_totals(self, clock):
        dev = mqdev(clock, num_queues=4)
        for i in range(8):
            dev.write_async(i * MIB, b"w" * 1024, queue=i % 4)
        dev.read(0, 512, queue=2)
        q = dev.stats.queues
        assert len(q) == 4
        assert sum(s.writes for s in q) == dev.stats.writes == 8
        assert sum(s.reads for s in q) == dev.stats.reads == 1
        assert sum(s.doorbells for s in q) == dev.stats.doorbells == 9
        assert sum(s.busy_ns for s in q) == dev.stats.busy_ns
        assert all(s.writes == 2 for s in q)

    def test_utilization_denominator_scales_with_queues(self, clock):
        dev = mqdev(clock, num_queues=2)
        dev.write(0, b"x" * MIB, queue=0)
        window = clock.now
        busy = dev.stats.busy_ns
        assert dev.utilization(window) == min(1.0, busy / (window * 2))

    def test_queue_utilization_permille(self, clock):
        dev = mqdev(clock, num_queues=2)
        dev.write(0, b"x" * MIB, queue=0)
        window = clock.now
        assert dev.queue_utilization_permille(0, window) > 0
        assert dev.queue_utilization_permille(1, window) == 0
        assert dev.queue_utilization_permille(0, 0) == 0

    def test_queue_out_of_range_rejected(self, clock):
        dev = mqdev(clock, num_queues=2)
        with pytest.raises(DeviceIOError):
            dev.write_async(0, b"x", queue=2)
        with pytest.raises(DeviceIOError):
            dev.read(0, 16, queue=-1)
        with pytest.raises(DeviceIOError):
            dev.queue_utilization_permille(7, 1000)


class TestCrash:
    def test_crash_resets_every_queue(self, clock):
        dev = mqdev(clock, num_queues=4)
        for i in range(4):
            dev.write_async(i * MIB, b"x" * MIB, queue=i)
        lost = dev.crash()
        assert lost == 4
        assert all(queue == [] for queue in dev._inflight)
        assert dev._busy_until == [clock.now] * 4
        # The device is usable immediately after the power cut.
        ticket = dev.write_async(0, b"again", queue=3)
        assert ticket.issued_at >= clock.now - NVME_SUBMIT_NS
