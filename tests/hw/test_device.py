"""Unit tests for the storage device model."""

import pytest

from repro.errors import DeviceFullError, DeviceIOError
from repro.hw.device import StorageDevice
from repro.hw.memdev import MemoryDevice
from repro.hw.nvdimm import NvdimmDevice
from repro.hw.nvme import NvmeDevice
from repro.hw.specs import DRAM, OPTANE_900P, SPINNING_DISK
from repro.sim.clock import SimClock
from repro.units import GIB, KIB, USEC


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def dev(clock):
    return NvmeDevice(clock)


class TestDataPlane:
    def test_write_read_roundtrip(self, dev):
        dev.write(0, b"hello")
        assert dev.read(0, 5) == b"hello"

    def test_unwritten_reads_zero(self, dev):
        assert dev.read(1000, 4) == b"\x00" * 4

    def test_unaligned_overlapping_writes(self, dev):
        dev.write(10, b"aaaaaaaa")
        dev.write(14, b"bb")
        assert dev.read(10, 8) == b"aaaabbaa"

    def test_write_spanning_blocks(self, dev):
        data = bytes(range(256)) * 40  # > 2 blocks
        dev.write(4090, data)
        assert dev.read(4090, len(data)) == data

    def test_capacity_enforced(self, clock):
        dev = StorageDevice(OPTANE_900P, clock)
        with pytest.raises(DeviceFullError):
            dev.write(dev.capacity - 10, b"x" * 100)


class TestCostModel:
    def test_write_latency_includes_fixed_cost(self, dev, clock):
        ticket = dev.write(0, b"x")
        assert ticket.latency_ns >= OPTANE_900P.write_latency_ns

    def test_bandwidth_term_scales(self, dev):
        small = dev.write_async(0, b"x" * KIB)
        large = dev.write_async(1 * GIB, b"x" * (128 * KIB))
        assert large.latency_ns > small.latency_ns

    def test_logical_size_inflates_time_only(self, dev):
        compact = dev.write_async(0, b"x" * 100)
        inflated = dev.write_async(8192, b"x" * 100, logical_nbytes=4096 + 40)
        assert inflated.completes_at - inflated.issued_at >= compact.latency_ns
        assert dev.read(8192, 3) == b"xxx"

    def test_queueing_serializes_transfers(self, dev):
        t1 = dev.write_async(0, b"x" * (1024 * KIB))
        t2 = dev.write_async(2 * GIB, b"x" * (1024 * KIB))
        assert t2.completes_at > t1.completes_at

    def test_sync_read_advances_clock(self, dev, clock):
        before = clock.now
        dev.read(0, 4096)
        assert clock.now >= before + OPTANE_900P.read_latency_ns

    def test_async_write_does_not_advance_clock(self, dev, clock):
        before = clock.now
        dev.write_async(0, b"x" * KIB)
        assert clock.now == before

    def test_hdd_much_slower_than_optane(self, clock):
        # The paper's historical argument: SLSes were impractical on
        # spinning disks.
        hdd = StorageDevice(SPINNING_DISK, SimClock())
        optane = NvmeDevice(SimClock())
        hdd_t = hdd.write(0, b"x" * 4096)
        optane_t = optane.write(0, b"x" * 4096)
        assert hdd_t.latency_ns > 100 * optane_t.latency_ns


class TestDurability:
    def test_flush_barrier_advances_to_durability(self, dev, clock):
        ticket = dev.write_async(0, b"x" * (64 * KIB))
        assert clock.now < ticket.completes_at
        dev.flush_barrier()
        assert clock.now >= ticket.completes_at
        assert dev.pending_writes() == 0

    def test_pending_deadline(self, dev, clock):
        t1 = dev.write_async(0, b"x" * KIB)
        t2 = dev.write_async(8192, b"x" * KIB)
        assert dev.pending_deadline() == max(t1.completes_at, t2.completes_at)

    def test_crash_tears_inflight_writes(self, dev):
        dev.write(0, b"durable!")
        dev.flush_barrier()
        dev.write_async(4096, b"inflight")
        lost = dev.crash()
        assert lost == 1
        assert dev.read(0, 8) == b"durable!"
        assert dev.read(4096, 8) == b"\x00" * 8

    def test_crash_keeps_durable_writes(self, dev, clock):
        ticket = dev.write_async(0, b"data")
        clock.advance_to(ticket.completes_at)
        assert dev.crash() == 0
        assert dev.read(0, 4) == b"data"

    def test_volatile_device_loses_everything(self, clock):
        dev = MemoryDevice(clock)
        dev.write(0, b"ephemeral")
        dev.flush_barrier()
        dev.crash()
        assert dev.read(0, 9) == b"\x00" * 9


class TestFailureInjection:
    def test_injected_failures(self, dev):
        dev.inject_failures(2)
        with pytest.raises(DeviceIOError):
            dev.write(0, b"x")
        with pytest.raises(DeviceIOError):
            dev.read(0, 1)
        dev.write(0, b"x")  # third op succeeds


class TestSpecValidation:
    def test_nvdimm_requires_byte_addressable(self, clock):
        with pytest.raises(ValueError):
            NvdimmDevice(clock, spec=OPTANE_900P)

    def test_memory_device_requires_volatile(self, clock):
        with pytest.raises(ValueError):
            MemoryDevice(clock, spec=OPTANE_900P)

    def test_stats_accumulate(self, dev):
        dev.write(0, b"x" * 100)
        dev.read(0, 50)
        assert dev.stats.writes == 1
        assert dev.stats.reads == 1
        assert dev.stats.bytes_written == 100
        assert dev.stats.bytes_read == 50
