"""The crash-consistency sweep (repro.fault.crashtest).

The acceptance bar for the fault plane: ≥ 50 distinct crash points
across the commit, log-append, GC, scrub, and SLSFS-snapshot paths,
every recovery prefix-consistent and leak-free with a restorable
latest image and an fsck that comes back clean or exactly repaired,
deterministically under a fixed seed.
"""

from repro.fault import names
from repro.fault.crashtest import (
    CHECKPOINTS,
    EXPECTED_CRASH_POINTS,
    SWEEP_SITES,
    WorkloadState,
    _boot,
    golden_hits,
    run_crash_point,
    run_sweep,
    run_workload,
)


class TestWorkload:
    def test_golden_run_completes_and_hits_every_site(self):
        hits = golden_hits()
        assert set(hits) == set(SWEEP_SITES)
        assert all(count > 0 for count in hits.values())

    def test_golden_run_records_ground_truth(self):
        kernel, device = _boot(seed=1)
        state = run_workload(kernel, device, WorkloadState())
        assert state.completed
        assert len(state.heap_expect) == CHECKPOINTS
        assert len(state.log_appended) == CHECKPOINTS
        # Every superblock generation written is in the history.
        assert sorted(state.history) == list(range(len(state.history)))


class TestSweep:
    def test_full_sweep_is_clean_and_wide(self):
        report = run_sweep()
        assert not report.failures, "\n".join(report.failures)
        # The acceptance floor: ≥ 50 distinct crash points...
        assert len(report.crash_points) >= 50
        # ...spread across the four consistency-critical paths.
        fired = report.fired_by_site()
        assert fired.get(names.FP_STORE_COMMIT, 0) >= CHECKPOINTS
        assert fired.get(names.FP_LOG_APPEND, 0) >= CHECKPOINTS
        assert fired.get(names.FP_GC_COLLECT, 0) >= 1
        assert fired.get(names.FP_FS_SYNC, 0) >= CHECKPOINTS
        assert fired.get(names.FP_DEVICE_WRITE, 0) >= 30
        # The sharded parallel flush contributes its own crash sites:
        # a power cut with some shards submitted and the rest buffered.
        assert fired.get(names.FP_STORE_SHARD_FLUSH, 0) >= CHECKPOINTS
        # The online scrub is swept too: a cut mid-scrub must leave
        # nothing behind, since scrubbing only reads.
        assert fired.get(names.FP_SCRUB_STEP, 0) >= 1
        # Every armed point actually fired (indices came from golden).
        assert len(report.crash_points) == len(report.points)
        # Full fidelity matches the pin CI enforces; a mismatch would
        # also have been flagged by the sweep itself as width drift.
        assert len(report.crash_points) == EXPECTED_CRASH_POINTS
        assert report.width_drift is None

    def test_sweep_is_deterministic(self):
        def fingerprint(report):
            return [
                (p.site, p.index, p.at_ns, p.generation,
                 p.snapshots_recovered)
                for p in report.points
            ]

        a = run_sweep(stride=8)
        b = run_sweep(stride=8)
        assert fingerprint(a) == fingerprint(b)

    def test_summary_renders(self):
        report = run_sweep(stride=16)
        text = report.summary()
        assert "crash sweep" in text
        assert names.FP_STORE_COMMIT in text

    def test_cli_pins_crash_point_count(self, capsys):
        # The CI job pins the sweep's crash-point count so a silently
        # dropped crash site fails the build.
        from repro.cli.main import main

        count = len(run_sweep(stride=16).crash_points)
        assert main(
            ["crashtest", "--stride", "16", "--expect-points", str(count)]
        ) == 0
        capsys.readouterr()
        assert main(
            ["crashtest", "--stride", "16", "--expect-points", str(count + 1)]
        ) == 1
        assert "crash-point count" in capsys.readouterr().err

    def test_cli_pinned_keyword_resolves_to_constant(self, capsys):
        # "--expect-points pinned" is what CI passes: the expected
        # width lives in exactly one place (EXPECTED_CRASH_POINTS), so
        # adding a crash site can never leave a stale number in the
        # workflow file.  A strided sweep visits fewer points, so the
        # pinned count must fail it — proving the keyword resolved.
        from repro.cli.main import main

        assert main(
            ["crashtest", "--stride", "16", "--expect-points", "pinned"]
        ) == 1
        err = capsys.readouterr().err
        assert str(EXPECTED_CRASH_POINTS) in err

    def test_fsck_report_export(self, capsys, tmp_path):
        import json

        from repro.cli.main import main

        points = tmp_path / "points.json"
        reports = tmp_path / "fsck.json"
        assert main([
            "crashtest", "--stride", "16",
            "--json", str(points), "--fsck-report", str(reports),
        ]) == 0
        capsys.readouterr()
        point_lines = [json.loads(line)
                       for line in points.read_text().splitlines()]
        assert all("fsck_findings" in p and "fsck_repaired" in p
                   for p in point_lines)
        report_lines = [json.loads(line)
                        for line in reports.read_text().splitlines()]
        assert len(report_lines) == len(point_lines)
        assert all(r["fsck"]["clean"] or r["fsck"]["repaired_all"]
                   for r in report_lines)


class TestCrashPointOracles:
    def test_crash_before_any_write_recovers_empty(self):
        point = run_crash_point(names.FP_DEVICE_WRITE, 0)
        assert point.fired
        assert point.generation == 0
        assert point.snapshots_recovered == 0
        assert not point.failures

    def test_crash_on_last_commit_keeps_prefix(self):
        hits = golden_hits()
        point = run_crash_point(
            names.FP_STORE_COMMIT, hits[names.FP_STORE_COMMIT] - 1
        )
        assert point.fired
        assert not point.failures
        # Everything before the torn final commit survived.
        assert point.snapshots_recovered > 0
