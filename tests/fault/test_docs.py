"""FAULTS.md must document every shipped failpoint.

The catalogue in ``repro.fault.names`` is the single source of truth;
this test pins the docs to it so neither can drift — the same
contract ``tests/obs/test_docs.py`` holds for OBSERVABILITY.md.
"""

from __future__ import annotations

from pathlib import Path

from repro.fault import ACTION_KINDS, names

DOC = Path(__file__).resolve().parent.parent.parent / "FAULTS.md"


def test_every_failpoint_is_documented():
    text = DOC.read_text()
    missing = [name for name in names.catalogue() if name not in text]
    assert not missing, (
        "failpoints shipped in repro.fault.names but absent from FAULTS.md:\n"
        + "\n".join(missing)
    )


def test_every_action_kind_is_documented():
    text = DOC.read_text()
    missing = [f"``{kind}``" for kind in ACTION_KINDS if f"``{kind}``" not in text]
    assert not missing, (
        "action kinds absent from FAULTS.md: " + ", ".join(missing)
    )


def test_catalogue_is_sorted_and_nonempty():
    cat = names.catalogue()
    assert cat == sorted(cat)
    assert len(cat) >= 10
