"""Failpoint behavior at every instrumented site.

Each test arms one failpoint and checks the site translates the
action into its native failure: device I/O errors, torn and dropped
writes, allocator exhaustion, commit/log/GC/sync failures, backend
degradation, remote retry + degrade-to-memory, and power cuts.
"""

import pytest

from repro.core.backends import (
    MemoryBackend,
    RemoteBackend,
    make_disk_backend,
)
from repro.core.orchestrator import SLS
from repro.errors import (
    DeviceIOError,
    HardwareError,
    ObjectStoreError,
    PowerCut,
    StoreFullError,
)
from repro.fault import FailpointRegistry, FaultAction, names
from repro.hw.netdev import NetworkLink
from repro.hw.nvme import NvmeDevice
from repro.objstore.gc import GarbageCollector
from repro.objstore.log import PersistentLog
from repro.objstore.store import ObjectStore
from repro.posix.kernel import Kernel
from repro.posix.syscalls import Syscalls
from repro.sim.clock import SimClock
from repro.slsfs.fs import SlsFS
from repro.units import GIB, PAGE_SIZE


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def device(clock):
    dev = NvmeDevice(clock)
    dev.attach_faults(FailpointRegistry(clock=clock))
    return dev


@pytest.fixture
def store(device):
    st = ObjectStore(device)
    st.attach_faults(device.faults)
    return st


class TestDeviceSites:
    def test_read_fail(self, device):
        device.faults.arm(names.FP_DEVICE_READ, FaultAction("fail"))
        with pytest.raises(DeviceIOError):
            device.read(0, 512)

    def test_write_fail(self, device):
        device.faults.arm(names.FP_DEVICE_WRITE, FaultAction("fail"))
        with pytest.raises(DeviceIOError):
            device.write(0, b"x" * 512)

    def test_write_crash_leaves_media_untouched(self, device):
        device.write(0, b"before")
        device.flush_barrier()
        device.faults.arm(names.FP_DEVICE_WRITE, FaultAction("crash"))
        with pytest.raises(PowerCut):
            device.write(0, b"after!")
        assert device.read(0, 6) == b"before"

    def test_torn_write_lands_prefix_only(self, device):
        device.faults.arm(
            names.FP_DEVICE_WRITE, FaultAction("torn", fraction=0.5)
        )
        device.write(0, b"AAAABBBB")
        device.flush_barrier()
        # Only the first half reached the media; the tail reads zeros.
        assert device.read(0, 8) == b"AAAA\x00\x00\x00\x00"

    def test_dropped_write_acknowledged_but_lost(self, device):
        device.faults.arm(names.FP_DEVICE_WRITE, FaultAction("drop"))
        ticket = device.write_async(0, b"ghost")
        assert ticket.completes_at > 0  # caller sees a normal ack
        device.flush_barrier()
        assert device.read(0, 5) == b"\x00" * 5

    def test_dropped_flush_keeps_writes_in_flight(self, device, clock):
        device.write_async(0, b"pending")
        device.faults.arm(names.FP_DEVICE_FLUSH, FaultAction("drop"))
        before = clock.now
        assert device.flush_barrier() == before  # no drain
        assert device.pending_writes() == 1
        device.crash()  # a later power cut tears them
        assert device.read(0, 7) == b"\x00" * 7

    def test_flush_fail(self, device):
        device.faults.arm(names.FP_DEVICE_FLUSH, FaultAction("fail"))
        with pytest.raises(DeviceIOError):
            device.flush_barrier()

    def test_label_match_selects_device(self, clock):
        registry = FailpointRegistry(clock=clock)
        a = NvmeDevice(clock, name="a")
        b = NvmeDevice(clock, name="b")
        a.attach_faults(registry)
        b.attach_faults(registry)
        registry.arm(names.FP_DEVICE_WRITE, FaultAction("fail"), device="b")
        a.write(0, b"fine")
        with pytest.raises(DeviceIOError):
            b.write(0, b"doomed")


class TestStoreSites:
    def test_alloc_fail(self, store):
        store.faults.arm(names.FP_STORE_ALLOC, FaultAction("fail"))
        with pytest.raises(StoreFullError):
            store.write_page(b"payload")

    def test_write_record_fail(self, store):
        store.faults.arm(names.FP_STORE_WRITE_RECORD, FaultAction("fail"))
        with pytest.raises(ObjectStoreError):
            store.write_meta(oid=1, value={"k": "v"})

    def test_commit_fail_before_superblock(self, store):
        ref = store.write_meta(oid=1, value={"k": "v"})
        store.faults.arm(names.FP_STORE_COMMIT, FaultAction("fail"))
        with pytest.raises(ObjectStoreError):
            store.commit_snapshot("snap", meta={}, records=[ref], pages=[])
        assert store.snapshots() == []

    def test_commit_crash_label_match_by_snapshot(self, store):
        ref = store.write_meta(oid=1, value={"k": "v"})
        store.faults.arm(
            names.FP_STORE_COMMIT, FaultAction("crash"), snapshot="s2"
        )
        store.commit_snapshot("s1", meta={}, records=[ref], pages=[])
        with pytest.raises(PowerCut):
            store.commit_snapshot("s2", meta={}, records=[ref], pages=[])

    def test_log_append_fail(self, store):
        log = PersistentLog(store, owner_oid=1, capacity=64 * 1024)
        log.append(b"ok", sync=True)
        store.faults.arm(names.FP_LOG_APPEND, FaultAction("fail"))
        with pytest.raises(ObjectStoreError):
            log.append(b"doomed", sync=True)
        # The failed append consumed no sequence number space on disk.
        assert [p for _s, p in log.scan_region()] == [b"ok"]

    def test_gc_fail(self, store):
        store.faults.arm(names.FP_GC_COLLECT, FaultAction("fail"))
        with pytest.raises(ObjectStoreError):
            GarbageCollector(store).collect()

    def test_slsfs_sync_crash(self, store):
        fs = SlsFS(store)
        store.faults.arm(names.FP_FS_SYNC, FaultAction("crash"))
        with pytest.raises(PowerCut):
            fs.sync()


@pytest.fixture
def world():
    kernel = Kernel(memory_bytes=1 * GIB)
    sls = SLS(kernel)
    proc = kernel.spawn("app")
    sysc = Syscalls(kernel, proc)
    entry = sysc.mmap(4 * PAGE_SIZE, name="heap")
    sysc.populate(entry.start, 4 * PAGE_SIZE, fill_fn=lambda i: b"pg%d" % i)
    group = sls.persist(proc, name="app")
    return kernel, sls, group


class TestBackendSites:
    def test_persist_fail_degrades_to_healthy_backends(self, world):
        """One failed backend shrinks durability expectations; the
        checkpoint still lands on the healthy one (orchestrator's
        per-backend HardwareError handling)."""
        kernel, sls, group = world
        group.attach(make_disk_backend(kernel, NvmeDevice(kernel.clock)))
        group.attach(MemoryBackend("mem0"))
        kernel.faults.arm(
            names.FP_BACKEND_PERSIST, FaultAction("fail"), backend="mem0"
        )
        image = sls.checkpoint(group)
        sls.barrier(group)
        assert image.durable
        assert image.durable_on == {"disk0"}

    def test_persist_crash_is_not_swallowed(self, world):
        """PowerCut is deliberately not a HardwareError: per-backend
        failure handling must never treat a power cut as one slow
        device."""
        kernel, sls, group = world
        group.attach(make_disk_backend(kernel, NvmeDevice(kernel.clock)))
        kernel.faults.arm(names.FP_BACKEND_PERSIST, FaultAction("crash"))
        with pytest.raises(PowerCut):
            sls.checkpoint(group)


class TestRemoteRetryAndDegrade:
    def attach_remote(self, kernel, group, **kwargs):
        link = NetworkLink(kernel.clock)
        src = link.attach("src")
        link.attach("dst")
        remote = RemoteBackend("replica", src, "dst", **kwargs)
        group.attach(remote)
        return remote

    def test_timeout_retries_with_backoff_then_succeeds(self, world):
        kernel, sls, group = world
        remote = self.attach_remote(kernel, group)
        kernel.faults.arm(
            names.FP_REMOTE_SEND, FaultAction("timeout"), count=2
        )
        before = kernel.clock.now
        image = sls.checkpoint(group)
        sls.barrier(group)
        assert image.durable_on == {"replica"}
        assert remote.timeouts == 2
        assert remote.retries == 2
        assert not remote.degraded
        # Exponential backoff: two retries cost 1ms + 2ms of virtual time.
        assert kernel.clock.now - before >= 3_000_000

    def test_exhausted_retries_degrade_to_memory(self, world):
        kernel, sls, group = world
        remote = self.attach_remote(kernel, group, max_retries=2)
        kernel.faults.arm(
            names.FP_REMOTE_SEND, FaultAction("timeout"), count=None
        )
        image = sls.checkpoint(group)
        assert remote.degraded
        assert remote.images_sent == 0
        assert not image.durable_on
        # Connectivity returns: the backlog drains and durability lands.
        kernel.faults.disarm()
        assert remote.flush_backlog() == 1
        assert not remote.degraded
        deadline = kernel.events.next_deadline()
        if deadline is not None:
            kernel.events.run_until(deadline)
        assert image.durable_on == {"replica"}

    def test_send_fail_raises_hardware_error(self, world):
        kernel, sls, group = world
        remote = self.attach_remote(kernel, group)
        kernel.faults.arm(names.FP_REMOTE_SEND, FaultAction("fail"))
        with pytest.raises(HardwareError):
            remote._try_send(b"payload", "img")


class TestZeroCostWhenDisarmed:
    def test_kernel_boots_with_empty_registry(self):
        kernel = Kernel()
        assert kernel.faults.armed() == []
        assert kernel.faults.log == []

    def test_checkpoint_unperturbed_by_disarmed_plane(self, world):
        """Same workload, registry present vs. armed-elsewhere: the
        virtual-time cost of the checkpoint must be identical."""
        kernel, sls, group = world
        group.attach(make_disk_backend(kernel, NvmeDevice(kernel.clock)))
        sls.checkpoint(group)
        t1 = kernel.clock.now

        kernel2 = Kernel(memory_bytes=1 * GIB)
        sls2 = SLS(kernel2)
        proc2 = kernel2.spawn("app")
        sysc2 = Syscalls(kernel2, proc2)
        entry2 = sysc2.mmap(4 * PAGE_SIZE, name="heap")
        sysc2.populate(
            entry2.start, 4 * PAGE_SIZE, fill_fn=lambda i: b"pg%d" % i
        )
        group2 = sls2.persist(proc2, name="app")
        group2.attach(make_disk_backend(kernel2, NvmeDevice(kernel2.clock)))
        # Armed, but matching a label no site ever carries.
        kernel2.faults.arm(
            names.FP_DEVICE_WRITE, FaultAction("fail"), device="no-such"
        )
        sls2.checkpoint(group2)
        assert kernel2.clock.now == t1
