"""Unit tests for the failpoint registry (repro.fault.registry)."""

import pytest

from repro.errors import FaultError
from repro.fault import ACTION_KINDS, FailpointRegistry, FaultAction
from repro.sim.clock import SimClock


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def reg(clock):
    return FailpointRegistry(clock=clock)


class TestArming:
    def test_disarmed_fire_returns_none(self, reg):
        assert reg.fire("device.write", nbytes=4096) is None
        assert reg.log == []

    def test_armed_point_fires_once_by_default(self, reg):
        reg.arm("device.write", FaultAction("fail"))
        assert reg.fire("device.write").kind == "fail"
        assert reg.fire("device.write") is None  # count=1 exhausted

    def test_unlimited_count(self, reg):
        reg.arm("device.write", FaultAction("fail"), count=None)
        for _ in range(5):
            assert reg.fire("device.write") is not None

    def test_after_skips_hits(self, reg):
        reg.arm("device.write", FaultAction("crash"), after=2)
        assert reg.fire("device.write") is None
        assert reg.fire("device.write") is None
        assert reg.fire("device.write").kind == "crash"

    def test_label_match(self, reg):
        reg.arm("device.write", FaultAction("fail"), device="nvme1")
        assert reg.fire("device.write", device="nvme0") is None
        assert reg.fire("device.write", device="nvme1") is not None

    def test_disarm_by_name_and_all(self, reg):
        reg.arm("a", FaultAction("fail"))
        reg.arm("a", FaultAction("drop"))
        reg.arm("b", FaultAction("fail"))
        assert reg.disarm("a") == 2
        assert reg.fire("a") is None
        assert reg.disarm() == 1
        assert reg.armed() == []

    def test_fire_log_keyed_by_virtual_clock(self, reg, clock):
        reg.arm("device.write", FaultAction("fail"))
        clock.advance(1234)
        reg.fire("device.write", device="nvme0")
        (record,) = reg.log
        assert record.at_ns == 1234
        assert record.name == "device.write"
        assert record.kind == "fail"
        assert record.labels == (("device", "nvme0"),)

    def test_fired_total(self, reg):
        reg.arm("a", FaultAction("fail"), count=2)
        reg.arm("b", FaultAction("drop"))
        reg.fire("a"), reg.fire("a"), reg.fire("b")
        assert reg.fired_total("a") == 2
        assert reg.fired_total() == 3


class TestValidation:
    def test_unknown_action_kind_rejected(self):
        with pytest.raises(FaultError):
            FaultAction("explode")

    def test_torn_fraction_bounds(self):
        with pytest.raises(FaultError):
            FaultAction("torn", fraction=1.0)
        assert FaultAction("torn", fraction=0.0).fraction == 0.0

    def test_probability_bounds(self, reg):
        with pytest.raises(FaultError):
            reg.arm("a", FaultAction("fail"), probability=1.5)

    def test_negative_after_rejected(self, reg):
        with pytest.raises(FaultError):
            reg.arm("a", FaultAction("fail"), after=-1)

    def test_action_kinds_catalogue(self):
        assert set(ACTION_KINDS) == {"fail", "torn", "drop", "crash", "timeout"}


class TestDeterminism:
    def run_probabilistic(self, seed):
        reg = FailpointRegistry(clock=SimClock(), seed=seed)
        reg.arm("device.write", FaultAction("fail"),
                probability=0.3, count=None)
        return [reg.fire("device.write") is not None for _ in range(64)]

    def test_same_seed_same_injections(self):
        assert self.run_probabilistic(7) == self.run_probabilistic(7)

    def test_different_seed_different_injections(self):
        assert self.run_probabilistic(7) != self.run_probabilistic(8)

    def test_streams_isolated_per_failpoint(self):
        """Arming a second probabilistic point must not perturb the
        first one's draw sequence (named streams, like repro.sim.rng)."""
        solo = FailpointRegistry(clock=SimClock(), seed=7)
        solo.arm("a", FaultAction("fail"), probability=0.5, count=None)
        solo_fires = [solo.fire("a") is not None for _ in range(32)]

        both = FailpointRegistry(clock=SimClock(), seed=7)
        both.arm("a", FaultAction("fail"), probability=0.5, count=None)
        both.arm("b", FaultAction("fail"), probability=0.5, count=None)
        both_fires = []
        for _ in range(32):
            both_fires.append(both.fire("a") is not None)
            both.fire("b")
        assert solo_fires == both_fires
