"""Unit tests for size/time helpers."""

import pytest

from repro.units import (
    GIB,
    KIB,
    MIB,
    MSEC,
    PAGE_SIZE,
    SEC,
    USEC,
    fmt_size,
    fmt_time,
    is_page_aligned,
    page_align_down,
    page_align_up,
    pages,
    transfer_ns,
)


class TestPages:
    def test_exact_pages(self):
        assert pages(PAGE_SIZE) == 1
        assert pages(4 * PAGE_SIZE) == 4

    def test_round_up(self):
        assert pages(1) == 1
        assert pages(PAGE_SIZE + 1) == 2

    def test_zero(self):
        assert pages(0) == 0

    def test_two_gib_is_paper_page_count(self):
        # The Redis working set in Table 3.
        assert pages(2 * GIB) == 524288


class TestAlignment:
    def test_align_down(self):
        assert page_align_down(PAGE_SIZE + 7) == PAGE_SIZE

    def test_align_up(self):
        assert page_align_up(PAGE_SIZE + 1) == 2 * PAGE_SIZE
        assert page_align_up(PAGE_SIZE) == PAGE_SIZE

    def test_is_aligned(self):
        assert is_page_aligned(0)
        assert is_page_aligned(8 * PAGE_SIZE)
        assert not is_page_aligned(100)


class TestFormatting:
    def test_fmt_size(self):
        assert fmt_size(512) == "512 B"
        assert fmt_size(2 * GIB) == "2.0 GiB"
        assert fmt_size(1536 * KIB) == "1.5 MiB"

    def test_fmt_time_units_match_paper(self):
        # Table 3 reports 5413.8 us, not 5.4 ms.
        assert fmt_time(5_413_800) == "5413.8 us"
        assert fmt_time(950_800) == "950.8 us"
        assert fmt_time(500) == "500 ns"
        assert fmt_time(50 * MSEC) == "50.0 ms"
        assert fmt_time(20 * SEC) == "20.00 s"


class TestTransfer:
    def test_basic_rate(self):
        assert transfer_ns(1000, 1000) == SEC

    def test_rounds_up(self):
        assert transfer_ns(1, 3) == (SEC // 3) + 1

    def test_zero_bytes(self):
        assert transfer_ns(0, 100) == 0

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            transfer_ns(100, 0)

    def test_two_gib_at_optane_speed(self):
        # Full 2 GiB flush at 2.2 GiB/s ≈ 0.91 s — why checkpoints
        # can't be full every 10 ms.
        ns = transfer_ns(2 * GIB, 2.2 * GIB)
        assert 0.89 * SEC < ns < 0.93 * SEC
