"""The ``sls fsck`` / ``sls scrub`` subcommands (RECOVERY.md's CLI)."""

import json

from repro.cli.main import main


class TestFsckCommand:
    def test_clean_store_exits_zero(self, capsys):
        assert main(["fsck"]) == 0
        out = capsys.readouterr().out
        assert "clean: no findings" in out

    def test_injected_damage_fails_a_bare_check(self, capsys):
        assert main(["fsck", "--inject", "checksum"]) == 1
        out = capsys.readouterr().out
        assert "injected:" in out
        assert "checksum-corrupt" in out

    def test_repair_fixes_and_rechecks(self, capsys):
        assert main(["fsck", "--inject", "checksum", "--repair"]) == 0
        out = capsys.readouterr().out
        assert "quarantined: lost+found/" in out
        assert "re-check after repair: clean" in out

    def test_json_report(self, tmp_path, capsys):
        path = tmp_path / "fsck.json"
        assert main(["fsck", "--inject", "orphan", "--repair",
                     "--json", str(path)]) == 0
        capsys.readouterr()
        report = json.loads(path.read_text())
        assert report["repair"] is True
        assert report["repaired_all"] is True
        assert report["findings"][0]["kind"] == "orphan-extent"


class TestScrubCommand:
    def test_clean_store_exits_zero(self, capsys):
        assert main(["scrub"]) == 0
        out = capsys.readouterr().out
        assert "clean: no checksum errors" in out

    def test_detects_damage_and_points_at_fsck(self, capsys):
        assert main(["scrub", "--inject", "checksum", "--batch", "4"]) == 1
        out = capsys.readouterr().out
        assert "checksum-corrupt" in out
        assert "sls fsck --repair" in out

    def test_json_report(self, tmp_path, capsys):
        path = tmp_path / "scrub.json"
        assert main(["scrub", "--json", str(path)]) == 0
        capsys.readouterr()
        report = json.loads(path.read_text())
        assert report["errors"] == 0
        assert report["extents_verified"] == report["extents_total"] > 0
