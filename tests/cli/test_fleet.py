"""The ``sls fleet`` scenario: storm report + noisy-neighbor gate."""

import json

from repro.cli.fleet import noisy_neighbor_cell, run_fleet
from repro.cli.main import main


class TestFleetCommand:
    def test_small_fleet_report(self, capsys):
        assert main(["fleet", "--functions", "12",
                     "--invocations", "24"]) == 0
        out = capsys.readouterr().out
        assert "12 functions" in out
        assert "cold start" in out
        assert "with QoS" in out

    def test_json_export(self, tmp_path, capsys):
        path = tmp_path / "fleet.json"
        assert main(["fleet", "--functions", "8", "--invocations", "16",
                     "--json", str(path)]) == 0
        report = json.loads(path.read_text())
        cell = report["fleet"]
        assert cell["functions"] == 8
        assert cell["cold_start_p99_ns"] >= cell["cold_start_p50_ns"] > 0
        assert report["noisy_neighbor"]["qos"]["steady_slo_violated"] is False

    def test_report_is_deterministic(self):
        assert run_fleet(10, invocations=20) == run_fleet(10, invocations=20)


class TestNoisyNeighbor:
    def test_qos_protects_where_baseline_violates(self):
        baseline = noisy_neighbor_cell(qos=False)
        qos = noisy_neighbor_cell(qos=True)
        # The whole point of the scheduler: same noisy storm, but only
        # the unthrottled run drags the steady tenant past its SLO.
        assert baseline["steady_slo_violated"]
        assert not qos["steady_slo_violated"]
        assert qos["steady_flush_p99_ns"] < baseline["steady_flush_p99_ns"]
        assert qos["noisy_rejected"] > 0
