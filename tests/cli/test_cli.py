"""Tests for the `sls` CLI (Table 1 commands)."""

import pytest

from repro.cli.main import DEMO_SCRIPT, main, run_lines
from repro.cli.session import SlsSession
from repro.errors import SlsError
from repro.units import MIB


@pytest.fixture
def session():
    return SlsSession(redis_working_set=4 * MIB)


class TestCommands:
    def test_launch_and_persist(self, session):
        assert "launched" in session.execute("launch redis0")
        assert "persisting" in session.execute("persist redis0")

    def test_persist_unknown_app(self, session):
        with pytest.raises(SlsError):
            session.execute("persist ghost")

    def test_attach_detach(self, session):
        session.execute("launch hello0")
        session.execute("persist hello0")
        assert "attached" in session.execute("attach hello0 nvme0")
        assert "detached" in session.execute("detach hello0 nvme0")

    def test_checkpoint_reports_breakdown(self, session):
        session.execute("launch hello0")
        session.execute("persist hello0")
        session.execute("attach hello0 nvme0")
        output = session.execute("checkpoint hello0")
        assert "stop" in output and "metadata" in output and "pages" in output

    def test_restore_reports_latency(self, session):
        session.execute("launch hello0")
        session.execute("persist hello0")
        session.execute("attach hello0 nvme0")
        session.execute("checkpoint hello0")
        output = session.execute("restore hello0")
        assert "restored" in output and "pids" in output

    def test_restore_without_image(self, session):
        session.execute("launch hello0")
        session.execute("persist hello0")
        with pytest.raises(SlsError):
            session.execute("restore hello0")

    def test_ps_lists_groups(self, session):
        session.execute("launch hello0")
        session.execute("persist hello0")
        output = session.execute("ps")
        assert "hello0" in output
        assert "GROUP" in output

    def test_ps_empty(self, session):
        assert "no persisted applications" in session.execute("ps")

    def test_send_recv_roundtrip(self, session):
        session.execute("launch hello0")
        session.execute("persist hello0")
        session.execute("attach hello0 nvme0")
        session.execute("checkpoint hello0")
        assert "sent" in session.execute("send hello0")
        assert "restored hello0 on aurora1" in session.execute("recv hello0")

    def test_rollback_command(self, session):
        session.execute("launch hello0")
        session.execute("persist hello0")
        session.execute("attach hello0 nvme0")
        session.execute("checkpoint hello0")
        output = session.execute("rollback hello0")
        assert "rolled back" in output and "notified" in output

    def test_migrate_command(self, session):
        session.execute("launch hello0")
        session.execute("persist hello0")
        session.execute("attach hello0 nvme0")
        output = session.execute("migrate hello0")
        assert "migrated hello0 to aurora1" in output
        assert "downtime" in output
        # Gone locally, running remotely.
        assert "hello0" not in session.execute("ps")

    def test_unknown_command(self, session):
        with pytest.raises(SlsError):
            session.execute("frobnicate x")

    def test_comments_and_blanks_ignored(self, session):
        assert session.execute("# comment") == ""
        assert session.execute("   ") == ""


class TestEntryPoints:
    def test_demo_exercises_all_table1_commands(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        for verb in ("persist", "attach", "detach", "checkpoint",
                     "restore", "ps", "send", "recv"):
            assert f"sls> {verb}" in out or f" {verb} " in out

    def test_demo_script_covers_table1(self):
        for verb in ("persist", "attach", "detach", "checkpoint",
                     "restore", "ps", "send", "recv"):
            assert verb in DEMO_SCRIPT

    def test_run_lines_reports_failures(self, session, capsys):
        failures = run_lines(session, ["bogus command"], echo=False)
        assert failures == 1
        assert "error" in capsys.readouterr().err

    def test_script_mode(self, tmp_path, capsys):
        script = tmp_path / "cmds.sls"
        script.write_text("launch hello0\npersist hello0\nps\n")
        assert main(["script", str(script)]) == 0
        assert "hello0" in capsys.readouterr().out

    def test_script_from_stdin(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("launch hello0\nps\n"))
        assert main(["script", "-"]) == 0
        assert "launched hello0" in capsys.readouterr().out

    def test_shell_mode(self, capsys, monkeypatch):
        lines = iter(["launch hello0", "persist hello0", "ps"])

        def fake_input(prompt=""):
            try:
                return next(lines)
            except StopIteration:
                raise EOFError

        monkeypatch.setattr("builtins.input", fake_input)
        assert main(["shell"]) == 0
        out = capsys.readouterr().out
        assert "launched hello0" in out
        assert "GROUP" in out

    def test_shell_reports_errors_and_continues(self, capsys, monkeypatch):
        lines = iter(["bogus", "launch hello0"])

        def fake_input(prompt=""):
            try:
                return next(lines)
            except StopIteration:
                raise EOFError

        monkeypatch.setattr("builtins.input", fake_input)
        assert main(["shell"]) == 0
        captured = capsys.readouterr()
        assert "unknown command" in captured.err
        assert "launched hello0" in captured.out
