"""``sls bench``: determinism, the speedup floor, and the compare gate."""

import copy
import json

import pytest

from repro.cli.bench import compare, run_suite, to_json
from repro.cli.main import main


@pytest.fixture(scope="module")
def results():
    return run_suite()


class TestDeterminism:
    def test_two_runs_are_byte_identical(self, results):
        # The whole point of the virtual clock: CI can diff the output.
        assert to_json(run_suite()) == to_json(results)

    def test_rendering_is_canonical(self, results):
        rendered = to_json(results)
        assert rendered.endswith("\n")
        assert json.loads(rendered) == results
        assert rendered == json.dumps(results, sort_keys=True, indent=2) + "\n"

    def test_all_leaves_are_integers(self, results):
        def walk(node):
            for value in node.values():
                if isinstance(value, dict):
                    walk(value)
                elif isinstance(value, list):
                    assert all(isinstance(v, int) for v in value)
                else:
                    assert isinstance(value, int), value

        walk(results)


class TestAcceptance:
    def test_batching_speedup_at_depth(self, results):
        # The tentpole's acceptance floor: >= 2x at queue depth >= 8.
        assert results["derived"]["speedup_qd8_x1000"] >= 2000
        assert results["derived"]["speedup_qd16_x1000"] >= 2000

    def test_batching_amortizes_doorbells(self, results):
        flush = results["checkpoint_flush"]
        assert flush["batched_qd8"]["doorbells"] < (
            flush["unbatched_qd8"]["doorbells"] // 10
        )
        assert flush["batched_qd8"]["extents"] < (
            flush["unbatched_qd8"]["extents"] // 10
        )

    def test_stop_time_unaffected_by_flush_path(self, results):
        flush = results["checkpoint_flush"]
        assert flush["batched_qd8"]["stop_ns"] == flush["unbatched_qd8"]["stop_ns"]

    def test_pipeline_cell_overlaps(self, results):
        assert results["pipeline"]["overlapped"] == 1
        assert results["pipeline"]["pipelined_checkpoints"] >= 1

    def test_multiqueue_speedup(self, results):
        # The multi-queue tentpole's acceptance floor: the sharded
        # parallel flush is >= 1.5x faster at 4 queues than 1 (qd8).
        assert results["derived"]["speedup_nq4_x1000"] >= 1500

    def test_writeamp_reduction(self, results):
        # The codec tentpole's acceptance floor: incremental
        # checkpoints under the codec move >= 2x fewer media bytes
        # than the RAW path, at every queue count.
        for num_queues in (1, 2, 4):
            key = f"speedup_writeamp_nq{num_queues}_x1000"
            assert results["derived"][key] >= 2000

    def test_writeamp_cells_same_work(self, results):
        cells = results["writeamp"]
        # Same dirty pages per incremental round in every cell; only
        # the encoding differs — and the codec cells actually encode.
        assert (
            cells["raw_nq1"]["pages_delta"] == cells["raw_nq1"]["pages_compressed"] == 0
        )
        for num_queues in (1, 2, 4):
            raw, codec = cells[f"raw_nq{num_queues}"], cells[f"codec_nq{num_queues}"]
            assert raw["incr_full_bytes"] == codec["incr_full_bytes"]
            assert codec["pages_delta"] > 0
            assert codec["incr_media_bytes"] < raw["incr_media_bytes"]

    def test_multiqueue_flush_spreads_shards(self, results):
        cells = results["multiqueue_flush"]
        assert cells["nq1_qd8"]["shards"] == 1
        assert cells["nq2_qd8"]["shards"] == 2
        assert cells["nq4_qd8"]["shards"] == 4
        # Same work lands in every cell; only the parallelism differs.
        assert (
            cells["nq1_qd8"]["records"]
            == cells["nq2_qd8"]["records"]
            == cells["nq4_qd8"]["records"]
        )

    def test_restorecache_p99_collapse(self, results):
        # The page-cache tentpole's acceptance floor: recorded-order
        # prefetch collapses lazy-restore fault p99 by >= 2x vs. the
        # read-through baseline at nq4 (and, in fact, everywhere).
        for num_queues in (1, 2, 4):
            key = f"speedup_restorecache_nq{num_queues}_x1000"
            assert results["derived"][key] >= 2000

    def test_restorecache_hit_rate_floor(self, results):
        # The replayed restore must serve >= 90% of its demand faults
        # from cache (the compare gate tolerances _ns/speedup_ leaves
        # only, so the permille floor is pinned here).
        for num_queues in (1, 2, 4):
            cell = results["restorecache"][f"nq{num_queues}"]
            assert cell["cache_hit_rate_permille"] >= 900
            assert cell["recorded_faults"] > 0

    def test_restorecache_prefetch_scales_with_queues(self, results):
        # The prefetch stream fans coalesced runs round-robin across
        # the submission queues, so its up-front cost shrinks as the
        # queue count grows.
        cells = results["restorecache"]
        assert (
            cells["nq4"]["replay_restore_ns"]
            < cells["nq2"]["replay_restore_ns"]
            < cells["nq1"]["replay_restore_ns"]
        )

    def test_bench_fault_log_export(self, results):
        from repro.cli.bench import last_fault_log_jsonl
        from repro.objstore.pagecache import FaultOrderLog

        text = last_fault_log_jsonl()
        assert text is not None  # the suite run above populated it
        log = FaultOrderLog.from_jsonl(text)
        assert len(log) > 0
        assert all(len(rec.content_hash) == 20 for rec in log.entries)

    def test_only_runs_a_single_scenario(self, results):
        partial = run_suite(only="multiqueue_flush")
        assert set(partial) == {"meta", "multiqueue_flush", "derived"}
        assert partial["multiqueue_flush"] == results["multiqueue_flush"]
        with pytest.raises(KeyError):
            run_suite(only="nonesuch")

    def test_matches_committed_baseline(self, results):
        with open("benchmarks/results/baseline.json") as handle:
            baseline = json.load(handle)
        assert compare(results, baseline) == []


class TestCompareGate:
    def test_identical_runs_pass(self, results):
        assert compare(results, copy.deepcopy(results)) == []

    def test_timing_regression_caught(self, results):
        current = copy.deepcopy(results)
        cell = current["checkpoint_flush"]["batched_qd8"]
        cell["flush_lag_ns"] = int(cell["flush_lag_ns"] * 1.5)
        regressions = compare(current, results)
        assert len(regressions) == 1
        assert "batched_qd8.flush_lag_ns" in regressions[0]

    def test_timing_within_tolerance_passes(self, results):
        current = copy.deepcopy(results)
        cell = current["checkpoint_flush"]["batched_qd8"]
        cell["flush_lag_ns"] = int(cell["flush_lag_ns"] * 1.04)
        assert compare(current, results, tolerance=0.05) == []

    def test_speedup_drop_caught(self, results):
        current = copy.deepcopy(results)
        current["derived"]["speedup_qd8_x1000"] //= 2
        regressions = compare(current, results)
        assert len(regressions) == 1
        assert "speedup_qd8_x1000" in regressions[0]

    def test_speedup_gain_passes(self, results):
        current = copy.deepcopy(results)
        current["derived"]["speedup_qd8_x1000"] *= 2
        assert compare(current, results) == []

    def test_missing_scenario_is_a_regression(self, results):
        current = copy.deepcopy(results)
        del current["checkpoint_flush"]["unbatched_qd1"]
        regressions = compare(current, results)
        assert any("missing from current run" in r for r in regressions)

    def test_new_scenario_in_current_ignored(self, results):
        current = copy.deepcopy(results)
        current["checkpoint_flush"]["batched_qd32"] = {"flush_lag_ns": 1}
        assert compare(current, results) == []

    def test_meta_mismatch_caught(self, results):
        current = copy.deepcopy(results)
        current["meta"]["suite_version"] = results["meta"]["suite_version"] + 1
        regressions = compare(current, results)
        assert any("suite_version" in r for r in regressions)


class TestCliEntry:
    def test_bench_json_and_compare_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(["bench", "--json", str(out)]) == 0
        first = out.read_text()
        assert json.loads(first)["meta"]["pages"] > 0
        # Comparing a run against its own output is clean.
        assert main(["bench", "--json", str(out), "--compare", str(out)]) == 0
        assert out.read_text() == first
        captured = capsys.readouterr()
        assert "no regressions" in captured.out

    def test_bench_compare_fails_on_regression(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main(["bench", "--json", str(baseline)]) == 0
        doctored = json.loads(baseline.read_text())
        doctored["checkpoint_flush"]["batched_qd8"]["flush_lag_ns"] = 1
        baseline.write_text(json.dumps(doctored))
        assert main(["bench", "--compare", str(baseline)]) == 1
        captured = capsys.readouterr()
        assert "REGRESSIONS" in captured.err

    def test_bench_only_flag(self, tmp_path, capsys):
        out = tmp_path / "partial.json"
        assert main(["bench", "--only", "pipeline", "--json", str(out)]) == 0
        partial = json.loads(out.read_text())
        assert set(partial) == {"meta", "pipeline", "derived"}
        capsys.readouterr()
        assert main(["bench", "--only", "nonesuch"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_bench_fault_log_flag(self, tmp_path, capsys):
        from repro.objstore.pagecache import FaultOrderLog

        out = tmp_path / "bench.json"
        fault_log = tmp_path / "faults.jsonl"
        assert main([
            "bench", "--only", "restorecache",
            "--json", str(out), "--fault-log", str(fault_log),
        ]) == 0
        log = FaultOrderLog.from_jsonl(fault_log.read_text())
        assert len(log) > 0
        capsys.readouterr()
        # A run that skips restorecache has no fault order to export.
        assert main([
            "bench", "--only", "pipeline", "--fault-log", str(fault_log),
        ]) == 2
        assert "restorecache" in capsys.readouterr().err

    def test_bench_only_rejects_compare(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text("{}")
        assert main([
            "bench", "--only", "pipeline", "--compare", str(baseline)
        ]) == 2
        assert "--only" in capsys.readouterr().err
