"""Guard: no module under ``src/repro`` reads the wall clock.

Everything is keyed to the simulated clock (``sim/clock.py``); a stray
``time.time()`` would leak host timing into results and break both
determinism and the observability layer's zero-cost guarantee.  CI
runs the same check as a grep step.
"""

from __future__ import annotations

import re
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: wall-clock reads that must never appear in simulated-kernel code
FORBIDDEN = re.compile(
    r"\btime\.(time|monotonic|perf_counter|process_time)\s*\("
    r"|\bdatetime\.(now|today|utcnow)\s*\("
    r"|\bfrom time import\b"
)


def test_no_wall_clock_reads_in_src():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        for lineno, line in enumerate(
            path.read_text().splitlines(), start=1
        ):
            if FORBIDDEN.search(line):
                offenders.append(f"{path.relative_to(SRC.parent.parent)}:{lineno}: {line.strip()}")
    assert not offenders, (
        "wall-clock usage in simulated-kernel code (use SimClock):\n"
        + "\n".join(offenders)
    )
