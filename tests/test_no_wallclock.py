"""Guard: no module under ``src/repro`` reads the wall clock.

Everything is keyed to the simulated clock (``sim/clock.py``); a stray
``time.time()`` would leak host timing into results and break both
determinism and the observability layer's zero-cost guarantee.

The check *is* the analyzer's ``no-wallclock`` rule (see ANALYSIS.md):
this test, the ``sls lint`` CLI, and the CI ``lint-invariants`` job
all call :func:`repro.analysis.cli.lint_tree`, so the three can never
disagree.  Unlike the old regex mirror, the rule resolves import
aliases — ``from time import time as now`` and ``t = time.time;
t()`` are both findings.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.cli import lint_tree

SRC = Path(__file__).resolve().parent.parent / "src"


def test_no_wall_clock_reads_in_src():
    report = lint_tree(SRC, ["no-wallclock"])
    offenders = [f.render() for f in report.findings]
    assert not offenders, (
        "wall-clock usage in simulated-kernel code (use SimClock):\n"
        + "\n".join(offenders)
    )


def test_rule_scans_the_whole_tree():
    # A regression guard for the guard: if ProjectTree ever stops
    # finding the sources, the test above would pass vacuously.
    report = lint_tree(SRC, ["no-wallclock"])
    assert report.modules_scanned > 50
    assert report.rules_run == ["no-wallclock"]
