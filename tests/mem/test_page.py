"""Unit tests for physical pages and the frame allocator."""

import pytest

from repro.errors import OutOfMemoryError
from repro.mem.page import ZERO_PAGE_HASH, Page
from repro.mem.phys import PhysicalMemory
from repro.units import MIB, PAGE_SIZE


class TestPageContent:
    def test_fresh_page_reads_zero(self):
        page = Page(pfn=1)
        assert page.read(0, 16) == b"\x00" * 16
        assert page.is_zero()

    def test_write_read_roundtrip(self):
        page = Page(pfn=1)
        page.write(100, b"hello")
        assert page.read(100, 5) == b"hello"

    def test_zero_padding_beyond_payload(self):
        page = Page(pfn=1, payload=b"abc")
        assert page.read(0, 8) == b"abc\x00\x00\x00\x00\x00"

    def test_read_whole_page_default(self):
        page = Page(pfn=1, payload=b"xy")
        assert len(page.read()) == PAGE_SIZE

    def test_write_at_page_end(self):
        page = Page(pfn=1)
        page.write(PAGE_SIZE - 4, b"tail")
        assert page.read(PAGE_SIZE - 4, 4) == b"tail"

    def test_out_of_bounds_rejected(self):
        page = Page(pfn=1)
        with pytest.raises(ValueError):
            page.write(PAGE_SIZE - 2, b"xxx")
        with pytest.raises(ValueError):
            page.read(PAGE_SIZE, 1)

    def test_oversized_payload_rejected(self):
        with pytest.raises(ValueError):
            Page(pfn=1, payload=b"x" * (PAGE_SIZE + 1))

    def test_frozen_page_write_asserts(self):
        page = Page(pfn=1)
        page.frozen = True
        with pytest.raises(AssertionError):
            page.write(0, b"x")


class TestContentHash:
    def test_zero_page_hash_constant(self):
        assert Page(pfn=1).content_hash() == ZERO_PAGE_HASH

    def test_equal_content_equal_hash(self):
        a = Page(pfn=1, payload=b"same")
        b = Page(pfn=2, payload=b"same")
        assert a.content_hash() == b.content_hash()

    def test_padding_normalized(self):
        a = Page(pfn=1, payload=b"data")
        b = Page(pfn=2, payload=b"data" + b"\x00" * 100)
        assert a.content_hash() == b.content_hash()

    def test_hash_invalidated_by_write(self):
        page = Page(pfn=1, payload=b"v1")
        before = page.content_hash()
        page.write(0, b"v2")
        assert page.content_hash() != before


class TestPhysicalMemory:
    def test_allocation_accounting(self):
        phys = PhysicalMemory(total_bytes=1 * MIB)
        assert phys.total_frames == 256
        page = phys.allocate()
        assert phys.allocated_frames == 1
        assert phys.free_frames == 255
        assert page.refcount == 1

    def test_unique_pfns(self):
        phys = PhysicalMemory(total_bytes=1 * MIB)
        pfns = {phys.allocate().pfn for _ in range(10)}
        assert len(pfns) == 10

    def test_oom(self):
        phys = PhysicalMemory(total_bytes=2 * PAGE_SIZE)
        phys.allocate()
        phys.allocate()
        with pytest.raises(OutOfMemoryError):
            phys.allocate()

    def test_release_frees_at_zero(self):
        phys = PhysicalMemory(total_bytes=1 * MIB)
        page = phys.allocate()
        phys.hold(page)
        assert not phys.release(page)
        assert phys.allocated_frames == 1
        assert phys.release(page)
        assert phys.allocated_frames == 0

    def test_double_free_asserts(self):
        phys = PhysicalMemory(total_bytes=1 * MIB)
        page = phys.allocate()
        phys.release(page)
        with pytest.raises(AssertionError):
            phys.release(page)

    def test_hold_of_dead_frame_asserts(self):
        phys = PhysicalMemory(total_bytes=1 * MIB)
        page = phys.allocate()
        phys.release(page)
        with pytest.raises(AssertionError):
            phys.hold(page)

    def test_copy_duplicates_content(self):
        phys = PhysicalMemory(total_bytes=1 * MIB)
        source = phys.allocate(payload=b"original")
        copy = phys.copy(source)
        assert copy.read(0, 8) == b"original"
        assert copy.pfn != source.pfn

    def test_pressure_and_peak(self):
        phys = PhysicalMemory(total_bytes=4 * PAGE_SIZE)
        pages = [phys.allocate() for _ in range(3)]
        assert phys.pressure() == 0.75
        assert phys.peak_frames == 3
        phys.release(pages[0])
        assert phys.peak_frames == 3

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            PhysicalMemory(total_bytes=100)
