"""Property-based tests (hypothesis) for the VM + COW invariants.

Three load-bearing invariants:

1. **Shared-memory coherence**: under any interleaving of writes and
   checkpoints, every process mapping a shared object reads the same
   bytes.
2. **Checkpoint immutability**: a frozen page's content never changes
   after capture, no matter what the application does next.
3. **Incremental completeness**: overlaying incremental captures onto
   the full base always equals the current live content.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.address_space import AddressSpace, MemContext
from repro.mem.cow import AuroraCow
from repro.mem.phys import PhysicalMemory
from repro.sim.clock import SimClock
from repro.units import GIB, PAGE_SIZE

N_PAGES = 8


def make_world():
    mem = MemContext(SimClock(), PhysicalMemory(total_bytes=1 * GIB))
    cow = AuroraCow(mem)
    a = AddressSpace(mem, "a")
    b = AddressSpace(mem, "b")
    entry = a.mmap(N_PAGES * PAGE_SIZE, shared=True, name="shm")
    b.mmap(N_PAGES * PAGE_SIZE, shared=True, obj=entry.obj, addr=entry.start)
    return mem, cow, a, b, entry


#: op = ("write", writer 0/1, page, byte) | ("checkpoint",)
ops_strategy = st.lists(
    st.one_of(
        st.tuples(
            st.just("write"),
            st.integers(0, 1),
            st.integers(0, N_PAGES - 1),
            st.integers(0, 255),
        ),
        st.tuples(st.just("checkpoint")),
    ),
    min_size=1,
    max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(ops=ops_strategy)
def test_shared_memory_coherence_under_checkpoints(ops):
    mem, cow, a, b, entry = make_world()
    spaces = (a, b)
    model = {}  # page -> last byte written
    last_epoch = None
    for op in ops:
        if op[0] == "write":
            _, who, page, value = op
            spaces[who].write(entry.start + page * PAGE_SIZE, bytes([value]))
            model[page] = value
        else:
            since = None if last_epoch is None else last_epoch + 1
            freeze = cow.freeze([entry.obj], incremental_since=since)
            last_epoch = freeze.epoch
    # Coherence: both mappers agree with the model on every page.
    for page, value in model.items():
        addr = entry.start + page * PAGE_SIZE
        assert a.read(addr, 1) == bytes([value])
        assert b.read(addr, 1) == bytes([value])


@settings(max_examples=60, deadline=None)
@given(ops=ops_strategy)
def test_frozen_pages_immutable(ops):
    mem, cow, a, b, entry = make_world()
    spaces = (a, b)
    captured: list[tuple[object, bytes]] = []
    last_epoch = None
    for op in ops:
        if op[0] == "write":
            _, who, page, value = op
            spaces[who].write(entry.start + page * PAGE_SIZE, bytes([value]))
        else:
            since = None if last_epoch is None else last_epoch + 1
            freeze = cow.freeze([entry.obj], incremental_since=since)
            last_epoch = freeze.epoch
            for frozen in freeze.pages:
                captured.append((frozen.page, frozen.page.snapshot_payload()))
    for page, content_at_capture in captured:
        assert page.snapshot_payload() == content_at_capture
        assert page.frozen


@settings(max_examples=60, deadline=None)
@given(ops=ops_strategy)
def test_incremental_overlay_equals_live_state(ops):
    mem, cow, a, b, entry = make_world()
    spaces = (a, b)
    # Seed every page so the full capture covers the object.
    for i in range(N_PAGES):
        a.write(entry.start + i * PAGE_SIZE, b"seed%d" % i)
    full = cow.freeze([entry.obj])
    image = {f.pindex: f.page.snapshot_payload() for f in full.pages}
    last_epoch = full.epoch
    for op in ops:
        if op[0] == "write":
            _, who, page, value = op
            spaces[who].write(entry.start + page * PAGE_SIZE, bytes([value]))
        else:
            freeze = cow.freeze([entry.obj], incremental_since=last_epoch + 1)
            last_epoch = freeze.epoch
            for frozen in freeze.pages:
                image[frozen.pindex] = frozen.page.snapshot_payload()
    # Final incremental closes the last interval.
    freeze = cow.freeze([entry.obj], incremental_since=last_epoch + 1)
    for frozen in freeze.pages:
        image[frozen.pindex] = frozen.page.snapshot_payload()
    for pindex in range(N_PAGES):
        live = a.read(entry.start + pindex * PAGE_SIZE, PAGE_SIZE)
        reconstructed = image[pindex] + bytes(PAGE_SIZE - len(image[pindex]))
        assert live == reconstructed, f"page {pindex} diverged"


@settings(max_examples=40, deadline=None)
@given(
    writes=st.lists(
        st.tuples(st.integers(0, N_PAGES - 1), st.binary(min_size=1, max_size=32)),
        max_size=30,
    )
)
def test_fork_isolation_property(writes):
    """No interleaving of parent writes leaks into a forked child."""
    mem = MemContext(SimClock(), PhysicalMemory(total_bytes=1 * GIB))
    AuroraCow(mem)
    parent = AddressSpace(mem, "parent")
    entry = parent.mmap(N_PAGES * PAGE_SIZE)
    for i in range(N_PAGES):
        parent.write(entry.start + i * PAGE_SIZE, b"gen0-%d" % i)
    snapshot = {
        i: parent.read(entry.start + i * PAGE_SIZE, 32) for i in range(N_PAGES)
    }
    child = parent.fork()
    for page, data in writes:
        parent.write(entry.start + page * PAGE_SIZE, data)
    for i in range(N_PAGES):
        assert child.read(entry.start + i * PAGE_SIZE, 32) == snapshot[i]


@settings(max_examples=40, deadline=None)
@given(
    frees=st.permutations(list(range(12))),
    sizes=st.lists(st.integers(1, 10_000), min_size=12, max_size=12),
)
def test_allocator_free_in_any_order(frees, sizes):
    """Extent allocator: free in any order restores the full pool."""
    from repro.objstore.alloc import ExtentAllocator

    alloc = ExtentAllocator(base=0, size=1 << 20)
    extents = [alloc.allocate(size) for size in sizes]
    for index in frees:
        alloc.free(extents[index])
        alloc.check_invariants()
    assert alloc.free_bytes == 1 << 20
    assert alloc.free_extent_count() == 1
