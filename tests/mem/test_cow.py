"""Tests for Aurora's checkpoint COW engine — the paper's core mechanism.

The decisive property (paper §3): after a checkpoint freezes shared
pages, a write by ANY process produces a new page visible to ALL
processes mapping the object — unlike fork-style COW, which would give
the writer a private copy and break shared-memory semantics.
"""

import pytest

from repro.mem.address_space import AddressSpace, MemContext
from repro.mem.cow import AuroraCow
from repro.mem.phys import PhysicalMemory
from repro.sim.clock import SimClock
from repro.units import GIB, KIB, PAGE_SIZE


@pytest.fixture
def mem():
    return MemContext(SimClock(), PhysicalMemory(total_bytes=2 * GIB))


@pytest.fixture
def cow(mem):
    return AuroraCow(mem)


@pytest.fixture
def aspace(mem, cow):
    return AddressSpace(mem, "app")


class TestFreeze:
    def test_freeze_captures_resident_pages(self, aspace, cow):
        entry = aspace.mmap(64 * KIB)
        aspace.populate(entry.start, 64 * KIB, fill=b"x")
        freeze = cow.freeze(aspace.vm_objects())
        assert len(freeze) == 16
        assert all(f.page.frozen for f in freeze.pages)

    def test_freeze_holds_references(self, aspace, cow, mem):
        entry = aspace.mmap(4 * PAGE_SIZE)
        aspace.populate(entry.start, 4 * PAGE_SIZE, fill=b"x")
        cow.freeze(aspace.vm_objects())
        page = entry.obj.resident_page(0)
        assert page.refcount == 2  # object + checkpoint

    def test_freeze_write_protects_ptes(self, aspace, cow):
        entry = aspace.mmap(4 * PAGE_SIZE)
        aspace.write(entry.start, b"data")
        cow.freeze(aspace.vm_objects())
        pte = aspace.pagetable.lookup(entry.start >> 12)
        assert pte is not None and not pte.writable

    def test_freeze_advances_epoch(self, aspace, cow, mem):
        entry = aspace.mmap(4 * PAGE_SIZE)
        aspace.write(entry.start, b"x")
        before = mem.epoch
        cow.freeze(aspace.vm_objects())
        assert mem.epoch == before + 1

    def test_freeze_charges_per_page(self, aspace, cow, mem):
        entry = aspace.mmap(256 * PAGE_SIZE)
        aspace.populate(entry.start, 256 * PAGE_SIZE, fill=b"x")
        before = mem.clock.now
        cow.freeze(aspace.vm_objects())
        charged = mem.clock.now - before
        expected = 256 * mem.cpu.pte_cow_arm_ns
        assert abs(charged - expected) <= 256  # carry rounding

    def test_empty_freeze(self, aspace, cow):
        aspace.mmap(4 * PAGE_SIZE)  # nothing resident
        freeze = cow.freeze(aspace.vm_objects())
        assert len(freeze) == 0


class TestSharedPageCow:
    """The crux: Aurora COW preserves sharing; fork COW does not."""

    def _shared_pair(self, mem):
        a = AddressSpace(mem, "a")
        b = AddressSpace(mem, "b")
        entry_a = a.mmap(64 * KIB, shared=True, name="shm")
        b.mmap(64 * KIB, shared=True, obj=entry_a.obj, addr=entry_a.start)
        a.write(entry_a.start, b"initial!")
        return a, b, entry_a

    def test_post_freeze_write_visible_to_all_sharers(self, mem, cow):
        a, b, entry = self._shared_pair(mem)
        cow.freeze([entry.obj])
        a.write(entry.start, b"UPDATED!")
        # THE property: b sees a's post-checkpoint write.
        assert b.read(entry.start, 8) == b"UPDATED!"

    def test_frozen_original_preserved_for_checkpoint(self, mem, cow):
        a, b, entry = self._shared_pair(mem)
        freeze = cow.freeze([entry.obj])
        frozen_page = freeze.pages[0].page
        a.write(entry.start, b"UPDATED!")
        # The checkpoint still owns the pre-write content.
        assert frozen_page.read(0, 8) == b"initial!"
        assert frozen_page.frozen

    def test_fork_style_cow_breaks_sharing_counterexample(self, mem, cow):
        """Demonstrates WHY the kernel forbids fork-COW on shared pages."""
        a, b, entry = self._shared_pair(mem)
        # Simulate fork-style COW: give a a private shadow of the
        # shared object (what fork does to private mappings).
        shadow = entry.obj.make_shadow(mem.phys)
        entry.obj.unregister_mapping(entry)
        original = entry.obj
        entry.obj = shadow
        shadow.register_mapping(entry)
        original.unref()
        a.pagetable.clear()
        a.write(entry.start, b"PRIVATE!")
        # Sharing is broken: b does NOT see a's write.
        assert b.read(entry.start, 8) == b"initial!"

    def test_cow_fault_updates_all_ptes(self, mem, cow):
        a, b, entry = self._shared_pair(mem)
        b.read(entry.start, 1)  # b has a PTE too
        cow.freeze([entry.obj])
        a.write(entry.start, b"NEW")
        pte_b = b.pagetable.lookup(entry.start >> 12)
        assert pte_b.page.read(0, 3) == b"NEW"

    def test_replacement_page_is_writable_again(self, mem, cow):
        a, b, entry = self._shared_pair(mem)
        cow.freeze([entry.obj])
        a.write(entry.start, b"first")
        faults_before = cow.stats.cow_faults
        a.write(entry.start, b"second")  # fast path now
        assert cow.stats.cow_faults == faults_before


class TestIncremental:
    def test_never_flushes_same_page_twice(self, aspace, cow, mem):
        entry = aspace.mmap(16 * PAGE_SIZE)
        aspace.populate(entry.start, 16 * PAGE_SIZE, fill=b"x")
        first = cow.freeze(aspace.vm_objects())
        assert len(first) == 16
        # Dirty 2 pages.
        aspace.write(entry.start, b"dirty0")
        aspace.write(entry.start + 5 * PAGE_SIZE, b"dirty5")
        second = cow.freeze(aspace.vm_objects(), incremental_since=first.epoch + 1)
        assert len(second) == 2
        captured = {f.pindex for f in second.pages}
        assert captured == {0, 5}

    def test_untouched_interval_captures_nothing(self, aspace, cow):
        entry = aspace.mmap(16 * PAGE_SIZE)
        aspace.populate(entry.start, 16 * PAGE_SIZE, fill=b"x")
        first = cow.freeze(aspace.vm_objects())
        second = cow.freeze(aspace.vm_objects(), incremental_since=first.epoch + 1)
        assert len(second) == 0

    def test_new_pages_are_captured(self, aspace, cow):
        entry = aspace.mmap(16 * PAGE_SIZE)
        aspace.write(entry.start, b"early")
        first = cow.freeze(aspace.vm_objects())
        aspace.write(entry.start + 8 * PAGE_SIZE, b"brand-new page")
        second = cow.freeze(aspace.vm_objects(), incremental_since=first.epoch + 1)
        assert {f.pindex for f in second.pages} == {8}

    def test_dirty_page_captured_once_per_interval(self, aspace, cow):
        entry = aspace.mmap(4 * PAGE_SIZE)
        aspace.populate(entry.start, 4 * PAGE_SIZE, fill=b"x")
        first = cow.freeze(aspace.vm_objects())
        aspace.write(entry.start, b"v1")
        aspace.write(entry.start, b"v2")
        aspace.write(entry.start, b"v3")
        second = cow.freeze(aspace.vm_objects(), incremental_since=first.epoch + 1)
        assert len(second) == 1

    def test_other_groups_dirty_log_preserved(self, mem, cow):
        a = AddressSpace(mem, "a")
        b = AddressSpace(mem, "b")
        ea = a.mmap(4 * PAGE_SIZE)
        eb = b.mmap(4 * PAGE_SIZE)
        a.write(ea.start, b"x")
        fa = cow.freeze(a.vm_objects())
        a.write(ea.start, b"y")
        b.write(eb.start, b"z")  # belongs to b's "group"
        cow.freeze(a.vm_objects(), incremental_since=fa.epoch + 1)
        # b's dirty entry must still be in the log.
        fb = cow.freeze(b.vm_objects(), incremental_since=1)
        assert len(fb) == 1

    def test_incremental_cheaper_than_full(self, aspace, cow, mem):
        entry = aspace.mmap(1024 * PAGE_SIZE)
        aspace.populate(entry.start, 1024 * PAGE_SIZE, fill=b"x")
        with mem.clock.region() as full_region:
            first = cow.freeze(aspace.vm_objects())
        for i in range(64):
            aspace.write(entry.start + i * PAGE_SIZE, b"dirty")
        with mem.clock.region() as incr_region:
            cow.freeze(aspace.vm_objects(), incremental_since=first.epoch + 1)
        # 1024 pages armed vs 64: cost dominated by arming.
        assert incr_region.elapsed < full_region.elapsed / 5


class TestCowStats:
    def test_stats_track_faults_and_flush_handoff(self, aspace, cow):
        entry = aspace.mmap(4 * PAGE_SIZE)
        aspace.populate(entry.start, 4 * PAGE_SIZE, fill=b"x")
        cow.freeze(aspace.vm_objects())
        aspace.write(entry.start, b"w")
        assert cow.stats.pages_frozen == 4
        assert cow.stats.cow_faults == 1
        assert cow.stats.frames_released_to_flush == 1
