"""Unit tests for VM objects and shadow chains."""

import pytest

from repro.errors import MappingError
from repro.mem.phys import PhysicalMemory
from repro.mem.vmobject import ObjectKind, VMObject
from repro.units import MIB


@pytest.fixture
def phys():
    return PhysicalMemory(total_bytes=16 * MIB)


class TestResidency:
    def test_insert_and_lookup(self, phys):
        obj = VMObject(phys, size_pages=10)
        page = phys.allocate(payload=b"data")
        obj.insert_page(3, page)
        found, owner = obj.lookup(3)
        assert found is page
        assert owner is obj

    def test_out_of_range_insert(self, phys):
        obj = VMObject(phys, size_pages=4)
        with pytest.raises(MappingError):
            obj.insert_page(4, phys.allocate())

    def test_insert_replaces_and_releases(self, phys):
        obj = VMObject(phys, size_pages=4)
        old = phys.allocate()
        obj.insert_page(0, old)
        obj.insert_page(0, phys.allocate())
        assert old.refcount == 0
        assert phys.allocated_frames == 1

    def test_iter_resident_sorted(self, phys):
        obj = VMObject(phys, size_pages=10)
        for i in (5, 1, 3):
            obj.insert_page(i, phys.allocate())
        assert [i for i, _ in obj.iter_resident()] == [1, 3, 5]


class TestShadowChains:
    def test_lookup_walks_chain(self, phys):
        base = VMObject(phys, size_pages=8)
        page = phys.allocate(payload=b"base")
        base.insert_page(2, page)
        shadow = base.make_shadow(phys)
        found, owner = shadow.lookup(2)
        assert found is page
        assert owner is base

    def test_shadow_page_overrides_base(self, phys):
        base = VMObject(phys, size_pages=8)
        base.insert_page(2, phys.allocate(payload=b"old"))
        shadow = base.make_shadow(phys)
        newer = phys.allocate(payload=b"new")
        shadow.insert_page(2, newer)
        found, owner = shadow.lookup(2)
        assert found is newer
        assert owner is shadow

    def test_write_fault_copies_up(self, phys):
        base = VMObject(phys, size_pages=8)
        base.insert_page(1, phys.allocate(payload=b"original"))
        shadow = base.make_shadow(phys)
        page = shadow.fault_page(1, for_write=True)
        assert page.read(0, 8) == b"original"
        assert shadow.resident_page(1) is page
        # Base unchanged.
        assert base.resident_page(1).read(0, 8) == b"original"
        assert base.resident_page(1) is not page

    def test_read_fault_shares_backing(self, phys):
        base = VMObject(phys, size_pages=8)
        original = phys.allocate(payload=b"shared")
        base.insert_page(1, original)
        shadow = base.make_shadow(phys)
        assert shadow.fault_page(1, for_write=False) is original
        assert shadow.resident_page(1) is None  # not copied

    def test_shadow_offset(self, phys):
        base = VMObject(phys, size_pages=8)
        base.insert_page(5, phys.allocate(payload=b"x"))
        shadow = VMObject(phys, size_pages=4, shadow=base, shadow_offset=3)
        found, _ = shadow.lookup(2)  # 2 + 3 == 5
        assert found is not None


class TestFaultResolution:
    def test_zero_fill(self, phys):
        obj = VMObject(phys, size_pages=4)
        page = obj.fault_page(0, for_write=False)
        assert page.is_zero()
        assert obj.resident_page(0) is page

    def test_pager_supplies_content(self, phys):
        obj = VMObject(phys, size_pages=4, pager=lambda i: b"paged-%d" % i)
        page = obj.fault_page(2, for_write=False)
        assert page.read(0, 7) == b"paged-2"

    def test_pager_none_falls_back_to_zero(self, phys):
        obj = VMObject(phys, size_pages=4, pager=lambda i: None)
        assert obj.fault_page(0, for_write=False).is_zero()

    def test_fault_idempotent(self, phys):
        obj = VMObject(phys, size_pages=4)
        first = obj.fault_page(0, for_write=True)
        second = obj.fault_page(0, for_write=True)
        assert first is second


class TestLifecycle:
    def test_unref_releases_pages(self, phys):
        obj = VMObject(phys, size_pages=4)
        obj.fault_page(0, for_write=True)
        obj.fault_page(1, for_write=True)
        assert phys.allocated_frames == 2
        obj.unref()
        assert phys.allocated_frames == 0

    def test_shadow_holds_base_alive(self, phys):
        base = VMObject(phys, size_pages=4)
        base.insert_page(0, phys.allocate())
        shadow = base.make_shadow(phys)
        base.unref()  # shadow still holds a ref
        assert phys.allocated_frames == 1
        shadow.unref()
        assert phys.allocated_frames == 0

    def test_negative_size_rejected(self, phys):
        with pytest.raises(MappingError):
            VMObject(phys, size_pages=-1)

    def test_kind_recorded(self, phys):
        obj = VMObject(phys, size_pages=1, kind=ObjectKind.CHECKPOINT)
        assert obj.kind is ObjectKind.CHECKPOINT
