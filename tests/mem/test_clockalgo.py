"""Unit tests for the clock (second-chance) replacement algorithm."""

import pytest

from repro.mem.clockalgo import ClockAlgorithm


@pytest.fixture
def clock_algo():
    return ClockAlgorithm()


class TestBasics:
    def test_insert_and_contains(self, clock_algo):
        clock_algo.insert("a")
        assert "a" in clock_algo
        assert len(clock_algo) == 1

    def test_duplicate_insert_touches(self, clock_algo):
        clock_algo.insert("a")
        clock_algo.insert("a")
        assert len(clock_algo) == 1

    def test_remove(self, clock_algo):
        clock_algo.insert("a")
        clock_algo.remove("a")
        assert "a" not in clock_algo
        assert clock_algo.evict() is None

    def test_remove_unknown_is_noop(self, clock_algo):
        clock_algo.remove("ghost")


class TestSecondChance:
    def test_evicts_unreferenced_first(self, clock_algo):
        for key in ("a", "b", "c"):
            clock_algo.insert(key)
        # First eviction pass clears all bits then takes "a".
        assert clock_algo.evict() == "a"

    def test_touched_page_survives_one_sweep(self, clock_algo):
        for key in ("a", "b", "c"):
            clock_algo.insert(key)
        # Clear all reference bits via one eviction cycle.
        clock_algo.evict()  # evicts a, clears b c
        clock_algo.touch("b")
        assert clock_algo.evict() == "c"  # b got a second chance

    def test_evict_empty(self, clock_algo):
        assert clock_algo.evict() is None

    def test_evict_many(self, clock_algo):
        for i in range(5):
            clock_algo.insert(i)
        victims = clock_algo.evict_many(3)
        assert len(victims) == 3
        assert len(clock_algo) == 2

    def test_evict_many_exhausts(self, clock_algo):
        clock_algo.insert("only")
        assert clock_algo.evict_many(10) == ["only"]

    def test_all_pages_evictable_eventually(self, clock_algo):
        for i in range(10):
            clock_algo.insert(i)
            clock_algo.touch(i)
        victims = clock_algo.evict_many(10)
        assert sorted(victims) == list(range(10))


class TestHotness:
    def test_hottest_ranks_by_touches(self, clock_algo):
        for key in ("cold", "warm", "hot"):
            clock_algo.insert(key)
        for _ in range(5):
            clock_algo.touch("hot")
        clock_algo.touch("warm")
        assert clock_algo.hottest(2) == ["hot", "warm"]

    def test_hottest_caps_count(self, clock_algo):
        for i in range(10):
            clock_algo.insert(i)
        assert len(clock_algo.hottest(3)) == 3

    def test_hand_position_survives_removals(self, clock_algo):
        for i in range(6):
            clock_algo.insert(i)
        clock_algo.evict()
        clock_algo.remove(3)
        clock_algo.remove(5)
        # No crash, and remaining keys still evictable.
        remaining = clock_algo.evict_many(10)
        assert len(remaining) == len(set(remaining)) == 3
