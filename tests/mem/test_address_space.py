"""Unit tests for address spaces: mmap/munmap, faults, fork."""

import pytest

from repro.errors import MappingError, SegmentationFault
from repro.mem.address_space import (
    PROT_READ,
    PROT_RW,
    AddressSpace,
    MemContext,
)
from repro.mem.cow import AuroraCow
from repro.mem.phys import PhysicalMemory
from repro.sim.clock import SimClock
from repro.units import GIB, KIB, MIB, PAGE_SIZE


@pytest.fixture
def mem():
    context = MemContext(SimClock(), PhysicalMemory(total_bytes=2 * GIB))
    AuroraCow(context)
    return context


@pytest.fixture
def aspace(mem):
    return AddressSpace(mem, "test")


class TestMapping:
    def test_mmap_basic(self, aspace):
        entry = aspace.mmap(1 * MIB, name="heap")
        assert entry.size == 1 * MIB
        assert entry.obj.size_pages == 256

    def test_mmap_rounds_to_pages(self, aspace):
        entry = aspace.mmap(100)
        assert entry.size == PAGE_SIZE

    def test_mmap_fixed_address(self, aspace):
        entry = aspace.mmap(64 * KIB, addr=0x4000_0000)
        assert entry.start == 0x4000_0000

    def test_mmap_overlap_rejected(self, aspace):
        aspace.mmap(64 * KIB, addr=0x4000_0000)
        with pytest.raises(MappingError):
            aspace.mmap(64 * KIB, addr=0x4000_0000)

    def test_mmap_finds_free_gap(self, aspace):
        a = aspace.mmap(64 * KIB)
        b = aspace.mmap(64 * KIB)
        assert b.start >= a.end or b.end <= a.start

    def test_unaligned_fixed_addr_rejected(self, aspace):
        with pytest.raises(MappingError):
            aspace.mmap(64 * KIB, addr=123)

    def test_zero_length_rejected(self, aspace):
        with pytest.raises(MappingError):
            aspace.mmap(0)

    def test_munmap_whole_entry(self, aspace):
        entry = aspace.mmap(64 * KIB)
        assert aspace.munmap(entry.start, entry.size) == 1
        assert aspace.find_entry(entry.start) is None

    def test_munmap_splits_entry(self, aspace):
        entry = aspace.mmap(16 * PAGE_SIZE)
        start = entry.start
        aspace.munmap(start + 4 * PAGE_SIZE, 4 * PAGE_SIZE)
        assert aspace.find_entry(start) is not None
        assert aspace.find_entry(start + 5 * PAGE_SIZE) is None
        assert aspace.find_entry(start + 9 * PAGE_SIZE) is not None

    def test_split_preserves_contents(self, aspace):
        entry = aspace.mmap(16 * PAGE_SIZE)
        addr = entry.start + 10 * PAGE_SIZE
        aspace.write(addr, b"survivor")
        aspace.munmap(entry.start, 4 * PAGE_SIZE)
        assert aspace.read(addr, 8) == b"survivor"

    def test_mprotect_blocks_writes(self, aspace):
        entry = aspace.mmap(64 * KIB)
        aspace.write(entry.start, b"x")
        aspace.mprotect(entry.start, entry.size, PROT_READ)
        with pytest.raises(SegmentationFault):
            aspace.write(entry.start, b"y")
        assert aspace.read(entry.start, 1) == b"x"


class TestFaults:
    def test_unmapped_access_faults(self, aspace):
        with pytest.raises(SegmentationFault):
            aspace.read(0xDEAD000, 4)

    def test_write_then_read(self, aspace):
        entry = aspace.mmap(64 * KIB)
        aspace.write(entry.start + 100, b"hello world")
        assert aspace.read(entry.start + 100, 11) == b"hello world"

    def test_cross_page_write(self, aspace):
        entry = aspace.mmap(64 * KIB)
        addr = entry.start + PAGE_SIZE - 3
        aspace.write(addr, b"spanning")
        assert aspace.read(addr, 8) == b"spanning"

    def test_fault_stats_counted(self, aspace, mem):
        entry = aspace.mmap(64 * KIB)
        aspace.write(entry.start, b"x")
        assert mem.stats.major == 1
        aspace.read(entry.start, 1)  # PTE hit, no new fault
        assert mem.stats.major == 1

    def test_fault_charges_time(self, aspace, mem):
        entry = aspace.mmap(64 * KIB)
        before = mem.clock.now
        aspace.write(entry.start, b"x")
        assert mem.clock.now > before

    def test_populate(self, aspace):
        entry = aspace.mmap(1 * MIB)
        count = aspace.populate(entry.start, 1 * MIB, fill=b"fill")
        assert count == 256
        assert aspace.resident_pages() == 256
        assert aspace.read(entry.start + 5 * PAGE_SIZE, 4) == b"fill"

    def test_populate_fill_fn_distinct(self, aspace):
        entry = aspace.mmap(4 * PAGE_SIZE)
        aspace.populate(entry.start, 4 * PAGE_SIZE, fill_fn=lambda i: b"p%d" % i)
        assert aspace.read(entry.start + 2 * PAGE_SIZE, 2) == b"p2"

    def test_dirty_log_records_new_pages(self, aspace, mem):
        entry = aspace.mmap(64 * KIB)
        aspace.write(entry.start, b"x")
        log = mem.drain_dirty_log()
        assert len(log) == 1
        assert log[0][1] == 0  # pindex


class TestSharedMappings:
    def test_two_spaces_share_object(self, mem):
        a = AddressSpace(mem, "a")
        b = AddressSpace(mem, "b")
        entry_a = a.mmap(64 * KIB, shared=True)
        entry_b = b.mmap(64 * KIB, shared=True, obj=entry_a.obj, addr=entry_a.start)
        a.write(entry_a.start, b"visible")
        assert b.read(entry_b.start, 7) == b"visible"

    def test_shared_write_both_directions(self, mem):
        a = AddressSpace(mem, "a")
        b = AddressSpace(mem, "b")
        entry_a = a.mmap(64 * KIB, shared=True)
        entry_b = b.mmap(64 * KIB, shared=True, obj=entry_a.obj, addr=entry_a.start)
        b.write(entry_b.start, b"from-b")
        assert a.read(entry_a.start, 6) == b"from-b"


class TestFork:
    def test_private_isolation_parent_to_child(self, aspace):
        entry = aspace.mmap(64 * KIB)
        aspace.write(entry.start, b"original")
        child = aspace.fork()
        aspace.write(entry.start, b"parent!!")
        assert child.read(entry.start, 8) == b"original"

    def test_private_isolation_child_to_parent(self, aspace):
        entry = aspace.mmap(64 * KIB)
        aspace.write(entry.start, b"original")
        child = aspace.fork()
        child.write(entry.start, b"child!!!")
        assert aspace.read(entry.start, 8) == b"original"
        assert child.read(entry.start, 8) == b"child!!!"

    def test_unwritten_pages_shared_after_fork(self, aspace, mem):
        entry = aspace.mmap(1 * MIB)
        aspace.populate(entry.start, 1 * MIB, fill=b"x")
        frames_before = mem.phys.allocated_frames
        child = aspace.fork()
        # Reads copy nothing.
        child.read(entry.start, 64)
        assert mem.phys.allocated_frames == frames_before

    def test_fork_shared_mapping_stays_shared(self, aspace):
        entry = aspace.mmap(64 * KIB, shared=True, name="shm")
        aspace.write(entry.start, b"before")
        child = aspace.fork()
        aspace.write(entry.start, b"after!")
        assert child.read(entry.start, 6) == b"after!"
        child.write(entry.start, b"child!")
        assert aspace.read(entry.start, 6) == b"child!"

    def test_fork_copies_layout(self, aspace):
        aspace.mmap(64 * KIB, name="a")
        aspace.mmap(128 * KIB, name="b")
        child = aspace.fork()
        assert len(child.entries) == 2
        assert [e.name for e in child.entries] == ["a", "b"]

    def test_grandchild_fork(self, aspace):
        entry = aspace.mmap(64 * KIB)
        aspace.write(entry.start, b"gen0")
        child = aspace.fork()
        grandchild = child.fork()
        grandchild.write(entry.start, b"gen2")
        assert aspace.read(entry.start, 4) == b"gen0"
        assert child.read(entry.start, 4) == b"gen0"
        assert grandchild.read(entry.start, 4) == b"gen2"


class TestIntrospection:
    def test_vm_objects_unique(self, aspace):
        entry = aspace.mmap(64 * KIB)
        aspace.mmap(64 * KIB, obj=entry.obj, shared=True)
        assert len(aspace.vm_objects()) == 1

    def test_resident_accounting(self, aspace):
        entry = aspace.mmap(1 * MIB)
        aspace.populate(entry.start, 128 * KIB)
        assert aspace.resident_pages() == 32
        assert aspace.resident_bytes() == 128 * KIB

    def test_destroy_releases_everything(self, aspace, mem):
        entry = aspace.mmap(1 * MIB)
        aspace.populate(entry.start, 1 * MIB)
        aspace.destroy()
        assert mem.phys.allocated_frames == 0
        assert len(aspace.entries) == 0
