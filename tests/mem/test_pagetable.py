"""Unit tests for the simulated page tables."""

import pytest

from repro.mem.page import Page
from repro.mem.pagetable import PageTable


@pytest.fixture
def table():
    return PageTable()


@pytest.fixture
def page():
    return Page(pfn=1, payload=b"x")


class TestPteOps:
    def test_install_lookup(self, table, page):
        pte = table.install(100, page, writable=True)
        assert table.lookup(100) is pte
        assert pte.page is page
        assert pte.writable and not pte.dirty and not pte.accessed

    def test_lookup_missing(self, table):
        assert table.lookup(5) is None

    def test_remove(self, table, page):
        table.install(1, page, writable=True)
        removed = table.remove(1)
        assert removed is not None and removed.page is page
        assert table.lookup(1) is None
        assert table.remove(1) is None

    def test_remove_range(self, table, page):
        for vpn in (1, 2, 3, 10):
            table.install(vpn, page, writable=True)
        assert table.remove_range(1, 4) == 3
        assert table.lookup(10) is not None
        assert len(table) == 1

    def test_write_protect(self, table, page):
        table.install(1, page, writable=True)
        assert table.write_protect(1) is True
        assert table.lookup(1).writable is False
        # Already protected: no change reported.
        assert table.write_protect(1) is False
        # Missing: no change.
        assert table.write_protect(99) is False

    def test_update_page_swaps_frame_and_clears_dirty(self, table, page):
        pte = table.install(1, page, writable=False)
        pte.dirty = True
        replacement = Page(pfn=2, payload=b"new")
        assert table.update_page(1, replacement, writable=True)
        pte = table.lookup(1)
        assert pte.page is replacement
        assert pte.writable
        assert not pte.dirty

    def test_update_missing_page(self, table, page):
        assert table.update_page(7, page, writable=True) is False

    def test_clear(self, table, page):
        table.install(1, page, True)
        table.install(2, page, True)
        assert table.clear() == 2
        assert len(table) == 0

    def test_iter_entries(self, table, page):
        table.install(3, page, True)
        table.install(1, page, True)
        vpns = sorted(vpn for vpn, _ in table.iter_entries())
        assert vpns == [1, 3]
        assert table.resident_count() == 2
