"""Unit tests for swap and the pageout daemon."""

import pytest

from repro.errors import MappingError
from repro.hw.nvme import NvmeDevice
from repro.mem.address_space import AddressSpace, MemContext
from repro.mem.cow import AuroraCow
from repro.mem.phys import PhysicalMemory
from repro.mem.swap import PageoutDaemon, SwapSpace
from repro.sim.clock import SimClock
from repro.units import MIB, PAGE_SIZE


@pytest.fixture
def mem():
    context = MemContext(SimClock(), PhysicalMemory(total_bytes=1 * MIB))
    AuroraCow(context)
    return context


@pytest.fixture
def swap(mem):
    return SwapSpace(mem, NvmeDevice(mem.clock, name="swapdev"))


@pytest.fixture
def aspace(mem):
    return AddressSpace(mem, "app")


class TestSwapSpace:
    def test_page_out_frees_frame(self, aspace, swap, mem):
        entry = aspace.mmap(4 * PAGE_SIZE)
        aspace.write(entry.start, b"swappable")
        frames = mem.phys.allocated_frames
        swap.page_out(entry.obj, 0)
        assert mem.phys.allocated_frames == frames - 1
        assert entry.obj.resident_page(0) is None
        assert 0 in entry.obj.swap_slots

    def test_fault_brings_content_back(self, aspace, swap):
        entry = aspace.mmap(4 * PAGE_SIZE)
        aspace.write(entry.start, b"swappable")
        swap.page_out(entry.obj, 0)
        assert aspace.read(entry.start, 9) == b"swappable"
        assert 0 not in entry.obj.swap_slots
        assert swap.stats.swapped_in == 1

    def test_page_out_removes_ptes(self, aspace, swap):
        entry = aspace.mmap(4 * PAGE_SIZE)
        aspace.write(entry.start, b"x")
        assert aspace.pagetable.lookup(entry.start_vpn) is not None
        swap.page_out(entry.obj, 0)
        assert aspace.pagetable.lookup(entry.start_vpn) is None

    def test_page_out_nonresident_rejected(self, aspace, swap):
        entry = aspace.mmap(4 * PAGE_SIZE)
        with pytest.raises(MappingError):
            swap.page_out(entry.obj, 0)

    def test_read_slot_without_faulting(self, aspace, swap):
        entry = aspace.mmap(4 * PAGE_SIZE)
        aspace.write(entry.start, b"checkpoint-me")
        swap.page_out(entry.obj, 0)
        content = swap.read_slot(entry.obj, 0)
        assert content[:13] == b"checkpoint-me"
        assert entry.obj.resident_page(0) is None  # still out

    def test_slot_reuse(self, aspace, swap):
        entry = aspace.mmap(4 * PAGE_SIZE)
        aspace.write(entry.start, b"one")
        slot1 = swap.page_out(entry.obj, 0)
        aspace.read(entry.start, 3)  # fault in, slot freed
        aspace.write(entry.start + PAGE_SIZE, b"two")
        slot2 = swap.page_out(entry.obj, 1)
        assert slot2 == slot1


class TestPageoutDaemon:
    def test_balance_relieves_pressure(self, mem, swap):
        aspace = AddressSpace(mem, "hog")
        entry = aspace.mmap(1 * MIB)
        # 1 MiB phys = 256 frames; populate 240 (94%).
        aspace.populate(entry.start, 240 * PAGE_SIZE, fill=b"x")
        daemon = PageoutDaemon(mem, swap, high_watermark=0.9, low_watermark=0.5)
        daemon.track(entry.obj)
        assert daemon.needs_balancing()
        evicted = daemon.balance()
        assert evicted > 0
        assert mem.phys.pressure() <= 0.5

    def test_balance_skips_frozen_pages(self, mem, swap):
        from repro.mem.cow import AuroraCow

        aspace = AddressSpace(mem, "app")
        entry = aspace.mmap(1 * MIB)
        aspace.populate(entry.start, 240 * PAGE_SIZE, fill=b"x")
        mem.frozen_write_handler = None
        cow = AuroraCow(mem)
        cow.freeze(aspace.vm_objects())
        daemon = PageoutDaemon(mem, swap, high_watermark=0.9, low_watermark=0.5)
        daemon.track(entry.obj)
        daemon.balance()
        # Frozen pages were skipped, so pressure stays high.
        assert mem.phys.pressure() > 0.5

    def test_content_survives_eviction(self, mem, swap):
        aspace = AddressSpace(mem, "app")
        entry = aspace.mmap(1 * MIB)
        aspace.populate(
            entry.start, 240 * PAGE_SIZE, fill_fn=lambda i: b"page-%d" % i
        )
        daemon = PageoutDaemon(mem, swap, high_watermark=0.9, low_watermark=0.5)
        daemon.track(entry.obj)
        daemon.balance()
        # Every page still readable (faulting back from swap).
        for i in (0, 100, 239):
            expected = b"page-%d" % i
            got = aspace.read(entry.start + i * PAGE_SIZE, len(expected))
            assert got == expected

    def test_watermark_validation(self, mem, swap):
        with pytest.raises(ValueError):
            PageoutDaemon(mem, swap, high_watermark=0.5, low_watermark=0.9)
