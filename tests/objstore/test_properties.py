"""Property-based tests for object-store invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.nvme import NvmeDevice
from repro.objstore.gc import GarbageCollector
from repro.objstore.store import ObjectStore
from repro.sim.clock import SimClock


def fresh_store():
    return ObjectStore(NvmeDevice(SimClock()))


@settings(max_examples=40, deadline=None)
@given(
    pages=st.lists(st.binary(min_size=1, max_size=128), min_size=1, max_size=30)
)
def test_dedup_read_your_writes(pages):
    """Whatever mix of duplicate pages is written, every ref reads back
    its own content, and unique storage matches unique content."""
    store = fresh_store()
    refs = [store.write_page(p) for p in pages]
    for payload, ref in zip(pages, refs):
        got = store.read_page(ref)
        assert got.rstrip(b"\x00") == payload.rstrip(b"\x00")
    unique = {p.rstrip(b"\x00") for p in pages}
    assert store.stats.pages_written == len(unique)


@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("commit"), st.integers(0, 5)),
            st.tuples(st.just("delete"), st.integers(0, 30)),
            st.tuples(st.just("gc"), st.integers(0, 30)),
        ),
        max_size=30,
    )
)
def test_snapshot_delete_gc_interleaving(ops):
    """Random commit/delete/GC interleavings never corrupt live data
    and never double-free."""
    store = fresh_store()
    gc = GarbageCollector(store)
    live = {}  # snap_id -> expected page payloads
    counter = 0
    for op in ops:
        if op[0] == "commit":
            counter += 1
            payloads = [b"snap%d-pg%d" % (counter, i) for i in range(op[1])]
            refs = [store.write_page(p) for p in payloads]
            snap = store.commit_snapshot(
                f"s{counter}", meta=None, records=[], pages=refs
            )
            live[snap.snap_id] = payloads
        elif op[0] == "delete" and live:
            snap_id = sorted(live)[op[1] % len(live)]
            store.delete_snapshot(snap_id)
            del live[snap_id]
        elif op[0] == "gc":
            gc.collect(limit=op[1])
            store.allocator.check_invariants()
    # Every surviving snapshot's pages read back intact.
    for snap_id, payloads in live.items():
        snapshot = store.directory.get(snap_id)
        _meta, _records, pages = store.load_manifest(snapshot)
        got = sorted(store.read_page(r) for r in pages)
        assert got == sorted(payloads)


@settings(max_examples=20, deadline=None)
@given(
    committed=st.integers(0, 4),
    torn_pages=st.integers(0, 6),
)
def test_crash_recovery_keeps_exactly_durable_prefix(committed, torn_pages):
    """After a crash, recovery yields exactly the snapshots that were
    durable — never a torn one, never fewer."""
    clock = SimClock()
    device = NvmeDevice(clock)
    store = ObjectStore(device)
    for i in range(committed):
        ref = store.write_page(b"c%d" % i)
        store.commit_snapshot(f"durable-{i}", meta=None, records=[], pages=[ref])
    store.flush_barrier()
    if torn_pages:
        refs = [store.write_page(b"torn-%d" % i) for i in range(torn_pages)]
        store.commit_snapshot("torn", meta=None, records=[], pages=refs)
    device.crash()
    fresh = ObjectStore(device)
    report = fresh.recover()
    names = {s.name for s in fresh.snapshots()}
    assert names == {f"durable-{i}" for i in range(committed)}
    assert report.snapshots_recovered == committed
