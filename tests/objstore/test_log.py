"""Unit tests for the persistent log (sls_ntflush backing)."""

import pytest

from repro.errors import ObjectStoreError
from repro.hw.nvme import NvmeDevice
from repro.hw.specs import OPTANE_900P
from repro.objstore.log import PersistentLog
from repro.objstore.store import ObjectStore
from repro.sim.clock import SimClock
from repro.units import USEC


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def nvme(clock):
    return NvmeDevice(clock)


@pytest.fixture
def store(nvme):
    return ObjectStore(nvme)


@pytest.fixture
def log(store):
    return PersistentLog(store, owner_oid=42, capacity=1 << 20)


class TestAppend:
    def test_sequences_monotonic(self, log):
        a = log.append(b"one")
        b = log.append(b"two")
        assert b.seq == a.seq + 1

    def test_sync_append_is_low_latency(self, log, clock):
        before = clock.now
        log.append(b"commit-record", sync=True)
        latency = clock.now - before
        # One device write: ~10 µs + transfer, nowhere near an
        # fsync's multiple journal round trips.
        assert latency < 3 * OPTANE_900P.write_latency_ns

    def test_async_append_does_not_block(self, log, clock):
        before = clock.now
        log.append(b"x", sync=False)
        assert clock.now == before

    def test_capacity_enforced(self, store):
        log = PersistentLog(store, owner_oid=1, capacity=256)
        log.append(b"x" * 100)
        with pytest.raises(ObjectStoreError):
            log.append(b"x" * 200)


class TestReplay:
    def test_replay_in_order(self, log):
        log.append(b"SET a 1")
        log.append(b"SET b 2")
        replay = log.replay()
        assert [payload for _seq, payload in replay] == [b"SET a 1", b"SET b 2"]

    def test_replay_since(self, log):
        log.append(b"old")
        marker = log.append(b"new").seq
        assert [p for _s, p in log.replay(since_seq=marker)] == [b"new"]

    def test_scan_region_stops_at_torn_tail(self, log, nvme, clock):
        log.append(b"durable", sync=True)
        entry = log.append(b"torn", sync=False)
        assert clock.now < entry.ticket.completes_at
        nvme.crash()
        recovered = log.scan_region()
        assert [p for _s, p in recovered] == [b"durable"]

    def test_scan_empty_region(self, log):
        assert log.scan_region() == []


class TestTruncation:
    def test_checkpoint_truncates(self, log):
        log.append(b"a")
        log.append(b"b")
        seq = log.append(b"c").seq
        dropped = log.truncate_before(seq)
        assert dropped == 2
        assert [p for _s, p in log.replay()] == [b"c"]

    def test_full_truncation_resets_head(self, log):
        log.append(b"a")
        seq = log.append(b"b").seq
        log.truncate_before(seq + 1)
        assert log.used == 0
        assert log.replay() == []

    def test_close_frees_region(self, store):
        free_before = store.allocator.free_bytes
        log = PersistentLog(store, owner_oid=1, capacity=1 << 16)
        assert store.allocator.free_bytes == free_before - (1 << 16)
        log.close()
        assert store.allocator.free_bytes == free_before
