"""``ObjectStore.recover()`` must rebuild a store from raw device bytes.

Commit N snapshots, then open a *fresh* ``ObjectStore`` over the same
device — no shared Python state — and check the ``RecoveryReport``
and the recovered contents against what was committed.  The crash
sweep (``tests/fault/test_crashtest.py``) covers torn-write recovery;
this file pins the clean-shutdown contract.
"""

import pytest

from repro.hw.nvme import NvmeDevice
from repro.objstore.store import ObjectStore
from repro.sim.clock import SimClock


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def nvme(clock):
    return NvmeDevice(clock)


@pytest.fixture
def store(nvme):
    return ObjectStore(nvme)


def commit(store, name, oid, value, pages=()):
    records = [store.write_meta(oid=oid, value=value)]
    refs = [store.write_page(p) for p in pages]
    return store.commit_snapshot(
        name, meta={"n": name}, records=records, pages=refs
    )


class TestRecoveryReport:
    def test_counts_match_committed_snapshots(self, store, nvme):
        for i in range(5):
            commit(store, f"snap-{i}", oid=i, value={"i": i},
                   pages=[b"pg-%d" % i])
        store.flush_barrier()
        report = ObjectStore(nvme).recover()
        assert report.snapshots_recovered == 5
        assert report.snapshots_discarded == 0
        assert report.errors == []

    def test_generation_matches_superblock(self, store, nvme):
        for i in range(3):
            commit(store, f"snap-{i}", oid=i, value={"i": i})
        store.flush_barrier()
        report = ObjectStore(nvme).recover()
        assert report.generation == store.volume.generation

    def test_recovered_contents_round_trip(self, store, nvme):
        payloads = {f"snap-{i}": b"payload-%d" % i for i in range(4)}
        for i, (name, payload) in enumerate(sorted(payloads.items())):
            commit(store, name, oid=i, value={"name": name}, pages=[payload])
        store.flush_barrier()
        reopened = ObjectStore(nvme)
        reopened.recover()
        by_name = {s.name: s for s in reopened.snapshots()}
        assert sorted(by_name) == sorted(payloads)
        for name, snap in by_name.items():
            meta, records, pages = reopened.load_manifest(snap)
            assert meta == {"n": name}
            assert reopened.read_page(pages[0]) == payloads[name]
            assert reopened.read_meta(records[0])["name"] == name

    def test_deleted_snapshot_stays_deleted(self, store, nvme):
        keep = commit(store, "keep", oid=1, value={}, pages=[b"k"])
        drop = commit(store, "drop", oid=2, value={}, pages=[b"d"])
        store.delete_snapshot(drop.snap_id)
        store.flush_barrier()
        report = ObjectStore(nvme).recover()
        assert report.snapshots_recovered == 1
        reopened = ObjectStore(nvme)
        reopened.recover()
        assert [s.name for s in reopened.snapshots()] == ["keep"]

    def test_allocator_accounting_survives_reopen(self, store, nvme):
        for i in range(3):
            commit(store, f"snap-{i}", oid=i, value={"i": i},
                   pages=[b"page-%d" % i])
        store.flush_barrier()
        reopened = ObjectStore(nvme)
        reopened.recover()
        assert reopened.allocator.allocated_bytes == store.allocator.allocated_bytes
        reopened.allocator.check_invariants()

    def test_empty_device_recovers_empty(self, nvme):
        report = ObjectStore(nvme).recover()
        assert report.snapshots_recovered == 0
        assert report.generation == 0
