"""The write-path page codec: classify, encode, decode, and its
store/fsck integration (compression + delta-encoded incrementals)."""

import hashlib

import pytest

from repro.errors import ChecksumError, ObjectStoreError
from repro.hw.nvme import NvmeDevice
from repro.hw.specs import DEFAULT_CPU, OPTANE_900P, with_queue_model
from repro.objstore.codec import (
    DELTA_MAX_DIRTY,
    MAX_DELTA_CHAIN,
    DeltaChainTooDeep,
    PageCodec,
    coalesce_extents,
    delta_info,
)
from repro.objstore.fsck import (
    DELTA_BROKEN_BASE,
    DELTA_CHAIN_TOO_DEEP,
    check_store,
    repair_store,
)
from repro.objstore.record import (
    ENC_DELTA,
    ENC_RAW,
    ENC_ZLIB,
    HEADER_SIZE,
    encode,
)
from repro.objstore.store import ObjectStore
from repro.sim.clock import SimClock
from repro.units import PAGE_SIZE


def incompressible(nbytes: int, seed: bytes = b"codec") -> bytes:
    """Deterministic pseudo-random bytes (a SHA-256 chain — the lint
    bans the random module, and zlib cannot shrink digest output)."""
    out = bytearray()
    block = seed
    while len(out) < nbytes:
        block = hashlib.sha256(block).digest()
        out += block
    return bytes(out[:nbytes])


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def store(clock):
    return ObjectStore(NvmeDevice(clock, queue_depth=8))


@pytest.fixture
def codec():
    return PageCodec(with_queue_model(OPTANE_900P, 8), DEFAULT_CPU)


class TestClassify:
    def test_compressible_page_stores_compressed(self, codec):
        plan = codec.plan(b"text " * 512)
        assert plan.flags == ENC_ZLIB
        assert plan.media_bytes < HEADER_SIZE + PAGE_SIZE
        assert plan.bytes_saved > 0
        assert plan.cpu_ns == DEFAULT_CPU.page_compress_ns

    def test_incompressible_page_stays_raw(self, codec):
        plan = codec.plan(incompressible(PAGE_SIZE))
        assert plan.flags == ENC_RAW
        assert plan.media_bytes == HEADER_SIZE + PAGE_SIZE
        assert plan.cpu_ns == 0.0

    def test_marginal_savings_below_crossover_stay_raw(self, codec):
        # Mostly-incompressible content: zlib shaves a few bytes, but
        # fewer than the JASS crossover (device ns saved <= compress
        # ns), so the codec declines to burn the CPU.
        payload = incompressible(PAGE_SIZE - 128) + bytes(128)
        saved = PAGE_SIZE - len(
            __import__("zlib").compress(payload, 1)
        )
        crossover = (
            DEFAULT_CPU.page_compress_ns * codec.spec.write_bandwidth / 1e9
        )
        assert 0 < saved <= crossover  # the case this test pins
        assert codec.plan(payload).flags == ENC_RAW

    def test_disarmed_codec_is_raw_only(self):
        codec = PageCodec(OPTANE_900P, DEFAULT_CPU)  # queue_depth == 0
        assert not codec.enabled
        assert codec.plan(b"text " * 512).flags == ENC_RAW

    def test_small_dirty_footprint_becomes_delta(self, codec):
        base = incompressible(PAGE_SIZE, seed=b"base")
        payload = base[:100] + b"dirty!" + base[106:]
        plan = codec.plan(
            payload, base_hash=b"\x01" * 20, base_depth=0,
            dirty_extents=[(100, 6)],
        )
        assert plan.flags == ENC_DELTA
        assert plan.depth == 1
        assert plan.base_hash == b"\x01" * 20
        assert plan.media_bytes < HEADER_SIZE + 256

    def test_no_dirty_extents_means_no_delta(self, codec):
        payload = incompressible(PAGE_SIZE)
        plan = codec.plan(payload, base_hash=b"\x01" * 20, dirty_extents=[])
        assert plan.flags == ENC_RAW  # fell through to (in)compression

    def test_large_dirty_footprint_declines_delta(self, codec):
        payload = incompressible(PAGE_SIZE)
        plan = codec.plan(
            payload, base_hash=b"\x01" * 20,
            dirty_extents=[(0, DELTA_MAX_DIRTY + 1)],
        )
        assert plan.flags != ENC_DELTA

    def test_chain_at_max_depth_forces_full_write(self, codec):
        payload = incompressible(PAGE_SIZE)
        plan = codec.plan(
            payload, base_hash=b"\x01" * 20,
            base_depth=MAX_DELTA_CHAIN, dirty_extents=[(0, 8)],
        )
        assert plan.flags == ENC_RAW  # re-anchor: full page, depth 0
        assert plan.depth == 0


class TestRoundTrip:
    def test_compressed_round_trip(self, codec):
        payload = b"round trip " * 300
        plan = codec.plan(payload)
        assert plan.flags == ENC_ZLIB
        out = codec.decode_page(plan.flags, plan.stored, lambda h: b"")
        assert out == payload

    def test_delta_round_trip(self, codec):
        base = incompressible(PAGE_SIZE, seed=b"rt-base")
        payload = base[:64] + b"patched" + base[71:]
        plan = codec.plan(
            payload, base_hash=b"\x02" * 20, dirty_extents=[(64, 7)],
        )
        assert plan.flags == ENC_DELTA
        out = codec.decode_page(plan.flags, plan.stored, lambda h: base)
        assert out == payload

    def test_decode_depth_bound(self, codec):
        plan = codec.plan(
            incompressible(PAGE_SIZE), base_hash=b"\x03" * 20,
            dirty_extents=[(0, 4)],
        )
        with pytest.raises(DeltaChainTooDeep):
            codec.decode_page(
                plan.flags, plan.stored, lambda h: b"", _depth=MAX_DELTA_CHAIN
            )

    def test_torn_delta_payload_is_checksum_error(self):
        with pytest.raises(ChecksumError):
            delta_info(b"\x00garbage")
        with pytest.raises(ChecksumError):
            # structurally valid but out-of-bounds extent
            delta_info(encode({
                "base": b"\x04" * 20, "depth": 1, "len": 16,
                "ext": [[PAGE_SIZE - 2, b"overrun"]],
            }))

    def test_unknown_encoding_rejected(self, codec):
        with pytest.raises(ObjectStoreError):
            codec.decode_page(7, b"", lambda h: b"")

    def test_coalesce_merges_overlaps(self):
        assert coalesce_extents([(12, 8), (10, 5), (40, 2)]) == [
            (10, 10), (40, 2)
        ]
        # adjacent runs merge too
        assert coalesce_extents([(0, 4), (4, 4)]) == [(0, 8)]


class TestStoreIntegration:
    def test_write_read_delta_chain(self, store):
        contents = [incompressible(PAGE_SIZE, seed=b"chain")]
        refs = [store.write_page(contents[0])]
        for i in range(1, 4):
            prev = contents[-1]
            patched = prev[:32] + b"v%03d" % i + prev[36:]
            contents.append(patched)
            refs.append(store.write_page(
                patched, delta_base=ObjectStore.page_hash(prev),
                dirty_extents=[(32, 4)],
            ))
        assert store.stats.pages_delta == 3
        for ref, content in zip(refs, contents):
            assert store.read_page(ref) == content

    def test_zero_length_delta_elides_the_write(self, store):
        content = incompressible(PAGE_SIZE, seed=b"same")
        first = store.write_page(content)
        written = store.stats.pages_written
        # Redirtied then restored to identical bytes: the content hash
        # matches the base, so this is a dedup hit — no record at all.
        again = store.write_page(
            content, delta_base=ObjectStore.page_hash(content),
            dirty_extents=[(0, 8)],
        )
        assert again.extent.offset == first.extent.offset
        assert store.stats.pages_written == written
        assert store.stats.pages_deduped == 1
        assert store.stats.pages_delta == 0

    def test_chain_reanchors_at_max_depth(self, store):
        content = incompressible(PAGE_SIZE, seed=b"anchor")
        store.write_page(content)
        for i in range(MAX_DELTA_CHAIN + 2):
            prev_hash = ObjectStore.page_hash(content)
            content = content[:64] + b"r%04d" % i + content[69:]
            store.write_page(
                content, delta_base=prev_hash, dirty_extents=[(64, 5)],
            )
        # depths 1..MAX chain up; the next write re-anchors as a full
        # record (depth 0) and the one after chains off the new anchor
        assert store.stats.pages_delta == MAX_DELTA_CHAIN + 1
        assert max(store._delta_depth.values()) == MAX_DELTA_CHAIN

    def test_missing_base_falls_back_to_full_write(self, store):
        content = incompressible(PAGE_SIZE, seed=b"nobase")
        ref = store.write_page(
            content, delta_base=b"\x05" * 20, dirty_extents=[(0, 4)],
        )
        assert store.stats.pages_delta == 0
        assert store.read_page(ref) == content

    def test_commit_pins_transitive_bases(self, store):
        base = incompressible(PAGE_SIZE, seed=b"pin")
        base_ref = store.write_page(base)
        patched = base[:16] + b"pinned" + base[22:]
        delta_ref = store.write_page(
            patched, delta_base=ObjectStore.page_hash(base),
            dirty_extents=[(16, 6)],
        )
        old = store.commit_snapshot(
            "old", meta=None, records=[], pages=[base_ref]
        )
        new = store.commit_snapshot(
            "new", meta=None, records=[], pages=[delta_ref]
        )
        _m, _r, new_pages = store.load_manifest(new)
        assert {p.content_hash for p in new_pages} == {
            base_ref.content_hash, delta_ref.content_hash
        }
        # Deleting the base's own snapshot must not free the base out
        # from under the live delta.
        store.delete_snapshot(old.snap_id)
        store.flush_barrier()
        assert store.read_page(delta_ref) == patched

    def test_coalesced_restore_reads_decode(self, store):
        base = incompressible(PAGE_SIZE, seed=b"coal")
        patched = base[:8] + b"restored" + base[16:]
        refs = [
            store.write_page(base),
            store.write_page(b"compress me " * 300),
            store.write_page(
                patched, delta_base=ObjectStore.page_hash(base),
                dirty_extents=[(8, 8)],
            ),
        ]
        store.flush_barrier()
        contents = store.read_pages_coalesced(refs)
        assert contents[refs[0].content_hash] == base
        assert contents[refs[1].content_hash] == b"compress me " * 300
        assert contents[refs[2].content_hash] == patched

    def test_recovery_rebuilds_encoded_store(self, clock):
        device = NvmeDevice(clock, queue_depth=8)
        store = ObjectStore(device)
        base = incompressible(PAGE_SIZE, seed=b"recover")
        patched = base[:40] + b"durable" + base[47:]
        refs = [
            store.write_page(base),
            store.write_page(
                patched, delta_base=ObjectStore.page_hash(base),
                dirty_extents=[(40, 7)],
            ),
            store.write_page(b"zipped " * 500),
        ]
        store.commit_snapshot("enc", meta=None, records=[], pages=refs)
        store.flush_barrier()
        device.crash()
        fresh = ObjectStore(device)
        report = fresh.recover()
        assert not report.errors
        for ref, content in zip(refs, [base, patched, b"zipped " * 500]):
            assert fresh.read_page(ref) == content
        # the delta maps rebuilt, so new deltas chain with correct depth
        assert fresh._delta_depth[refs[1].content_hash] == 1

    def test_encoding_stats_and_gauge(self, clock):
        from repro.obs import KernelObs
        from repro.obs import names as obs_names

        device = NvmeDevice(clock, queue_depth=8)
        store = ObjectStore(device)
        obs = KernelObs(clock, label="codec-test")
        store.attach_obs(obs)
        store.write_page(b"gauge " * 400)
        base = incompressible(PAGE_SIZE, seed=b"gauge")
        store.write_page(base)
        patched = base[:4] + b"obs" + base[7:]
        store.write_page(
            patched, delta_base=ObjectStore.page_hash(base),
            dirty_extents=[(4, 3)],
        )
        assert obs.registry.counter(
            obs_names.C_STORE_PAGES_COMPRESSED, store=device.name
        ).value == 1
        assert obs.registry.counter(
            obs_names.C_STORE_PAGES_DELTA, store=device.name
        ).value == 1
        saved = obs.registry.counter(
            obs_names.C_STORE_ENCODED_BYTES_SAVED, store=device.name
        ).value
        assert saved == store.stats.encoded_bytes_saved > 0
        ratio = obs.registry.gauge(
            obs_names.G_STORE_COMPRESSION_RATIO, store=device.name
        ).value
        assert 0 < ratio < 1000
        assert ratio == (
            store.stats.page_media_bytes * 1000
            // store.stats.page_full_bytes
        )
        # the `sls stats` table renders one row per store
        from repro.obs import render_store_encoding

        table = render_store_encoding(obs.registry)
        assert table is not None
        assert device.name in table
        assert "media%" in table and "delta" in table

    def test_encoding_table_absent_without_codec_metrics(self, clock):
        from repro.obs import KernelObs, render_store_encoding

        obs = KernelObs(clock, label="no-codec")
        assert render_store_encoding(obs.registry) is None


class TestFsckClassification:
    def _store_with_delta(self, clock):
        device = NvmeDevice(clock, queue_depth=8)
        store = ObjectStore(device)
        base = incompressible(PAGE_SIZE, seed=b"fsck")
        patched = base[:24] + b"fscked" + base[30:]
        refs = [
            store.write_page(base),
            store.write_page(
                patched, delta_base=ObjectStore.page_hash(base),
                dirty_extents=[(24, 6)],
            ),
        ]
        store.commit_snapshot("deltas", meta=None, records=[], pages=refs)
        store.flush_barrier()
        return device, store, refs

    def test_intact_delta_store_fscks_clean(self, clock):
        _device, store, _refs = self._store_with_delta(clock)
        assert check_store(store).clean

    def test_torn_delta_record_exactly_repairs(self, clock):
        device, store, refs = self._store_with_delta(clock)
        offset = refs[1].extent.offset + HEADER_SIZE + 2
        block_no, within = divmod(offset, 4096)
        device._blocks[block_no][within] ^= 0xFF
        report = repair_store(store)
        assert report.findings and report.repaired_all
        assert check_store(store).clean
        # the base rode along into quarantine-salvage untouched: its
        # content is still byte-identical wherever it survived
        for snapshot in store.snapshots():
            _m, _r, pages = store.load_manifest(snapshot)
            for page in pages:
                if page.content_hash == refs[0].content_hash:
                    assert store.read_page(page) is not None

    def test_broken_base_classified(self, clock):
        device, store, refs = self._store_with_delta(clock)
        # smash the *base* record: the base reports its own corruption,
        # the dependent delta classifies as delta-broken-base
        offset = refs[0].extent.offset + HEADER_SIZE + 2
        block_no, within = divmod(offset, 4096)
        device._blocks[block_no][within] ^= 0xFF
        report = check_store(store)
        kinds = set(report.counts())
        assert DELTA_BROKEN_BASE in kinds

    def test_over_deep_chain_classified(self, clock):
        device, store, refs = self._store_with_delta(clock)
        # rewrite the delta record claiming a self-referential base:
        # reconstruction recurses past MAX_DELTA_CHAIN
        stored = encode({
            "base": refs[1].content_hash, "depth": 1, "len": PAGE_SIZE,
            "ext": [[0, b"loop"]],
        })
        from repro.objstore.record import KIND_PAGE, pack_record

        raw = pack_record(
            kind=KIND_PAGE, oid=0, epoch=0, payload=stored, flags=ENC_DELTA
        )
        assert len(raw) <= refs[1].extent.length
        block_no, within = divmod(refs[1].extent.offset, 4096)
        device._blocks[block_no][within:within + len(raw)] = raw
        report = check_store(store)
        assert DELTA_CHAIN_TOO_DEEP in set(report.counts())
