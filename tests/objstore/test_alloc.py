"""Unit tests for the extent allocator."""

import pytest

from repro.errors import StoreFullError
from repro.objstore.alloc import Extent, ExtentAllocator


@pytest.fixture
def alloc():
    return ExtentAllocator(base=1000, size=10_000)


class TestAllocate:
    def test_first_fit_from_base(self, alloc):
        extent = alloc.allocate(100)
        assert extent.offset == 1000
        assert extent.length == 100

    def test_sequential_allocations_adjacent(self, alloc):
        a = alloc.allocate(100)
        b = alloc.allocate(50)
        assert b.offset == a.end

    def test_accounting(self, alloc):
        alloc.allocate(100)
        assert alloc.allocated_bytes == 100
        assert alloc.free_bytes == 9_900

    def test_exhaustion(self, alloc):
        alloc.allocate(10_000)
        with pytest.raises(StoreFullError):
            alloc.allocate(1)

    def test_fragmentation_blocks_large_alloc(self, alloc):
        extents = [alloc.allocate(1000) for _ in range(10)]
        for extent in extents[::2]:
            alloc.free(extent)
        assert alloc.free_bytes == 5000
        with pytest.raises(StoreFullError):
            alloc.allocate(2000)

    def test_invalid_length(self, alloc):
        with pytest.raises(ValueError):
            alloc.allocate(0)


class TestFree:
    def test_free_makes_space_reusable(self, alloc):
        extent = alloc.allocate(10_000)
        alloc.free(extent)
        assert alloc.allocate(10_000).offset == 1000

    def test_coalesce_with_both_neighbours(self, alloc):
        a = alloc.allocate(100)
        b = alloc.allocate(100)
        c = alloc.allocate(100)
        alloc.free(a)
        alloc.free(c)
        alloc.free(b)
        alloc.check_invariants()
        assert alloc.free_extent_count() == 1

    def test_double_free_detected(self, alloc):
        extent = alloc.allocate(100)
        alloc.free(extent)
        with pytest.raises(ValueError):
            alloc.free(extent)

    def test_overlapping_free_detected(self, alloc):
        extent = alloc.allocate(100)
        alloc.free(extent)
        with pytest.raises(ValueError):
            alloc.free(Extent(extent.offset + 10, 20))

    def test_out_of_range_free_rejected(self, alloc):
        with pytest.raises(ValueError):
            alloc.free(Extent(0, 100))


class TestReserve:
    def test_reserve_specific_extent(self, alloc):
        alloc.reserve(Extent(5000, 200))
        assert alloc.allocated_bytes == 200
        # New allocation avoids the reserved range.
        for _ in range(5):
            extent = alloc.allocate(1000)
            assert extent.end <= 5000 or extent.offset >= 5200

    def test_reserve_conflict_detected(self, alloc):
        alloc.reserve(Extent(5000, 200))
        with pytest.raises(ValueError):
            alloc.reserve(Extent(5100, 200))

    def test_reserve_then_free_restores(self, alloc):
        extent = Extent(5000, 200)
        alloc.reserve(extent)
        alloc.free(extent)
        alloc.check_invariants()
        assert alloc.free_bytes == 10_000

    def test_reserve_at_edges(self, alloc):
        alloc.reserve(Extent(1000, 100))     # exact start
        alloc.reserve(Extent(10_900, 100))   # exact end
        alloc.check_invariants()


class TestFragmentationMetric:
    def test_zero_when_unfragmented(self, alloc):
        assert alloc.fragmentation() == 0.0

    def test_grows_with_holes(self, alloc):
        extents = [alloc.allocate(1000) for _ in range(10)]
        for extent in extents[1::2]:
            alloc.free(extent)
        assert 0.0 < alloc.fragmentation() < 1.0
