"""Restore-side page cache: LRU mechanics, determinism, and safety.

The safety contract is the one ISSUE 10 pins: a stale cached page must
never survive a repair — snapshot delete, crash recovery, fsck repair,
and scrub damage findings all drop the affected entries — and the
scrubber itself must read the media, never the cache.
"""

import pytest

from repro.cli.recovery import build_demo_store, inject
from repro.hw.nvme import NvmeDevice
from repro.objstore import ObjectStore, Scrubber
from repro.objstore.fsck import Fsck
from repro.objstore.pagecache import (
    DEFAULT_PAGE_CACHE_BYTES,
    FaultOrderLog,
    PageCache,
)
from repro.sim.clock import SimClock
from repro.sim.hermetic import hermetic_ids
from repro.units import KIB


def h(i: int) -> bytes:
    return bytes([i]) * 20


class TestLruMechanics:
    def test_fill_hit_and_lru_eviction(self):
        cache = PageCache(capacity_bytes=3 * KIB)
        for i in range(3):
            cache.put(h(i), bytes([i]) * KIB)
        assert len(cache) == 3
        # Touch h(0) so h(1) becomes the LRU victim.
        assert cache.get(h(0)) == bytes([0]) * KIB
        cache.put(h(3), bytes([3]) * KIB)
        assert h(1) not in cache
        assert h(0) in cache and h(2) in cache and h(3) in cache
        assert cache.evictions == 1
        assert cache.bytes_cached == 3 * KIB

    def test_hit_miss_accounting(self):
        cache = PageCache(capacity_bytes=KIB)
        assert cache.get(h(1)) is None
        cache.put(h(1), b"x" * 64)
        assert cache.get(h(1)) == b"x" * 64
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate_permille == 500

    def test_oversized_page_is_not_cached(self):
        cache = PageCache(capacity_bytes=KIB)
        cache.put(h(1), b"x" * (2 * KIB))
        assert len(cache) == 0

    def test_duplicate_put_is_a_refresh_not_a_refill(self):
        cache = PageCache(capacity_bytes=2 * KIB)
        cache.put(h(1), b"a" * KIB)
        cache.put(h(2), b"b" * KIB)
        cache.put(h(1), b"a" * KIB)  # refresh: h(2) is now the victim
        assert cache.insertions == 2
        cache.put(h(3), b"c" * KIB)
        assert h(2) not in cache and h(1) in cache

    def test_disabled_cache_is_a_noop(self):
        cache = PageCache(capacity_bytes=0)
        assert not cache.enabled
        cache.put(h(1), b"x")
        assert cache.get(h(1)) is None
        assert cache.peek(h(1)) is None
        assert (cache.hits, cache.misses, len(cache)) == (0, 0, 0)

    def test_peek_is_unaccounted(self):
        cache = PageCache(capacity_bytes=KIB)
        cache.put(h(1), b"x")
        assert cache.peek(h(1)) == b"x"
        assert cache.peek(h(2)) is None
        assert (cache.hits, cache.misses) == (0, 0)

    def test_invalidate_and_clear(self):
        cache = PageCache(capacity_bytes=4 * KIB)
        cache.put(h(1), b"a" * 128)
        cache.put(h(2), b"b" * 128)
        assert cache.invalidate(h(1))
        assert not cache.invalidate(h(1))  # already gone
        assert cache.bytes_cached == 128
        assert cache.clear() == 1
        assert cache.invalidations == 2
        assert len(cache) == 0 and cache.bytes_cached == 0

    def test_resize_shrinks_lru_first_and_zero_disables(self):
        cache = PageCache(capacity_bytes=3 * KIB)
        for i in range(3):
            cache.put(h(i), bytes([i]) * KIB)
        cache.resize(1 * KIB)
        assert list(cache._entries) == [h(2)]
        assert cache.evictions == 2
        cache.resize(0)
        assert not cache.enabled and len(cache) == 0


class TestStoreIntegration:
    def _page_refs(self, store, name):
        snapshot = store.snapshot_by_name(name)
        _meta, _records, pages = store.load_manifest(snapshot)
        return pages

    def test_read_page_fills_then_hits(self):
        _device, store, _obs = build_demo_store()
        ref = self._page_refs(store, "demo-0")[0]
        first = store.read_page(ref)
        assert store.pagecache.misses == 1
        assert ref.content_hash in store.pagecache
        second = store.read_page(ref)
        assert second == first
        assert store.pagecache.hits == 1

    def test_cache_hit_skips_the_device(self):
        device, store, _obs = build_demo_store()
        ref = self._page_refs(store, "demo-0")[0]
        store.read_page(ref)
        before = device.clock.now
        store.read_page(ref)
        hit_ns = device.clock.now - before
        # A hit charges at most a CPU page copy, not a device round-trip.
        assert 0 <= hit_ns < 10_000

    def test_coalesced_read_serves_cached_refs_without_device_ops(self):
        device, store, _obs = build_demo_store()
        refs = self._page_refs(store, "demo-0")
        payloads = store.read_pages_coalesced(refs)
        before = device.clock.now
        again = store.read_pages_coalesced(refs)
        assert again == payloads
        assert device.clock.now == before  # pure cache hits: no I/O
        assert store.pagecache.hits == len(again)

    def test_prefetch_is_unaccounted_and_warms_the_cache(self):
        _device, store, _obs = build_demo_store()
        refs = self._page_refs(store, "demo-0")
        warmed = store.prefetch_pages(refs)
        assert warmed == len({r.content_hash for r in refs})
        assert (store.pagecache.hits, store.pagecache.misses) == (0, 0)
        # Every subsequent demand read is a hit.
        store.read_pages_coalesced(refs)
        assert store.pagecache.misses == 0
        assert store.pagecache.hit_rate_permille == 1000

    def test_prefetch_on_disabled_cache_is_a_noop(self):
        device, store, _obs = build_demo_store()
        refs = self._page_refs(store, "demo-0")
        store.pagecache.resize(0)
        before = device.clock.now
        assert store.prefetch_pages(refs) == 0
        assert device.clock.now == before

    def test_disabled_cache_reads_through_every_time(self):
        device, store, _obs = build_demo_store()
        store.pagecache.resize(0)
        ref = self._page_refs(store, "demo-0")[0]
        first = store.read_page(ref)
        t0 = device.clock.now
        assert store.read_page(ref) == first
        assert device.clock.now - t0 > 1000  # paid the device again


class TestDeterminism:
    def _trace_one_run(self) -> str:
        with hermetic_ids():
            _device, store, _obs = build_demo_store()
            store.pagecache = PageCache(capacity_bytes=6 * KIB,
                                        record_trace=True)
            for name in ("demo-0", "demo-1", "demo-2", "demo-0"):
                snapshot = store.snapshot_by_name(name)
                _m, _r, pages = store.load_manifest(snapshot)
                store.read_pages_coalesced(pages)
                store.read_page(pages[0])
            return store.pagecache.trace_text()

    def test_hit_miss_eviction_trace_is_byte_identical(self):
        first = self._trace_one_run()
        second = self._trace_one_run()
        assert first == second
        assert "fill " in first and "hit " in first

    def test_fault_order_log_roundtrips(self):
        log = FaultOrderLog()
        log.record(3, 7, h(1))
        log.record(3, 9, h(2))
        text = log.to_jsonl()
        back = FaultOrderLog.from_jsonl(text)
        assert back.entries == log.entries
        assert back.to_jsonl() == text
        assert len(FaultOrderLog.from_jsonl("")) == 0


class TestInvalidation:
    def _warm(self, store, name):
        snapshot = store.snapshot_by_name(name)
        _m, _r, pages = store.load_manifest(snapshot)
        store.read_pages_coalesced(pages)
        return snapshot, pages

    def test_snapshot_delete_drops_freed_hashes(self):
        _device, store, _obs = build_demo_store()
        snapshot, pages = self._warm(store, "demo-1")
        assert all(r.content_hash in store.pagecache for r in pages)
        store.delete_snapshot(snapshot.snap_id)
        assert all(r.content_hash not in store.pagecache for r in pages)
        assert store.pagecache.invalidations >= len(pages)

    def test_recover_clears_the_cache(self):
        _device, store, _obs = build_demo_store()
        self._warm(store, "demo-0")
        assert len(store.pagecache) > 0
        store.recover()
        assert len(store.pagecache) == 0

    def test_fsck_repair_clears_the_cache(self):
        device, store, _obs = build_demo_store()
        self._warm(store, "demo-0")
        inject(device, store, "checksum")
        report = Fsck(store, repair=True).run()
        assert report.findings  # the injected damage was found
        assert len(store.pagecache) == 0

    def test_scrub_finding_invalidates_the_cached_page(self):
        device, store, _obs = build_demo_store()
        _snapshot, pages = self._warm(store, "demo-1")
        damaged = pages[0]
        assert damaged.content_hash in store.pagecache
        inject(device, store, "checksum")  # hits demo-1's first page
        stats = Scrubber(store, batch_extents=8).run()
        assert stats.errors == 1
        assert damaged.content_hash not in store.pagecache

    def test_scrub_reads_media_not_cache(self):
        # The cached clean copy must not mask on-media damage: warm the
        # cache *before* injecting, then scrub — the finding must still
        # be raised even though a cached decode would have succeeded.
        device, store, _obs = build_demo_store()
        self._warm(store, "demo-1")
        inject(device, store, "checksum")
        stats = Scrubber(store, batch_extents=8).run()
        assert stats.errors == 1


class TestObsWiring:
    def test_counters_and_gauges_export(self):
        _device, store, obs = build_demo_store()
        snapshot = store.snapshot_by_name("demo-0")
        _m, _r, pages = store.load_manifest(snapshot)
        store.read_pages_coalesced(pages)
        store.read_pages_coalesced(pages)
        reg = obs.registry
        name = store.device.name
        misses = reg.counter("objstore.pagecache.misses_total", store=name)
        hits = reg.counter("objstore.pagecache.hits_total", store=name)
        assert misses.value == store.pagecache.misses > 0
        assert hits.value == store.pagecache.hits > 0
        rate = reg.gauge("objstore.pagecache.hit_rate_permille", store=name)
        assert rate.value == store.pagecache.hit_rate_permille
        resident = reg.gauge("objstore.pagecache.resident_bytes", store=name)
        assert resident.value == store.pagecache.bytes_cached > 0

    def test_custom_capacity_via_constructor(self):
        clock = SimClock()
        device = NvmeDevice(clock, name="tiny", queue_depth=8)
        store = ObjectStore(device, cache_bytes=0)
        assert not store.pagecache.enabled
        store = ObjectStore(
            NvmeDevice(clock, name="std", queue_depth=8)
        )
        assert store.pagecache.capacity_bytes == DEFAULT_PAGE_CACHE_BYTES


class TestDecodeHelper:
    def test_delta_chain_fills_cache_for_bases(self):
        # A delta-encoded page's decode resolves its base through the
        # single decode helper, so the base lands in the cache too.
        clock = SimClock()
        device = NvmeDevice(clock, name="delta-nvme", queue_depth=8)
        store = ObjectStore(device, mem=None)
        base_payload = b"base" * 1024
        base_ref = store.write_page(base_payload)
        dirty = bytearray(base_payload)
        dirty[100:108] = b"deltaed!"
        delta_ref = store.write_page(
            bytes(dirty), delta_base=base_ref.content_hash,
            dirty_extents=[(100, 108)],
        )
        store.flush_barrier()
        if delta_ref.content_hash == base_ref.content_hash:
            pytest.skip("codec did not delta-encode this pair")
        content = store.read_page(delta_ref)
        assert content == bytes(dirty)
        assert delta_ref.content_hash in store.pagecache
