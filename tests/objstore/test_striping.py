"""Striped extent allocation and the sharded-flush round trip.

The acceptance bar for the multi-queue store: every PageRef written
through any shard must be readable and checksum-clean after recovery,
no matter which submission queue carried its bytes.
"""

import pytest

from repro.hw.nvme import NvmeDevice
from repro.objstore.alloc import Extent, ExtentAllocator
from repro.objstore.store import ObjectStore
from repro.sim.clock import SimClock


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def mq_store(clock):
    return ObjectStore(NvmeDevice(clock, queue_depth=8, num_queues=4))


class TestStripedAllocator:
    def test_shard_preference_places_in_stripe(self):
        alloc = ExtentAllocator(base=0, size=4096, num_shards=4)
        for shard in range(4):
            extent = alloc.allocate(64, shard=shard)
            assert alloc.shard_of(extent.offset) == shard

    def test_shard_of_partitions_the_range(self):
        alloc = ExtentAllocator(base=1000, size=4000, num_shards=4)
        assert alloc.shard_of(1000) == 0
        assert alloc.shard_of(1999) == 0
        assert alloc.shard_of(2000) == 1
        assert alloc.shard_of(4999) == 3
        with pytest.raises(ValueError):
            alloc.shard_of(5000)

    def test_exhausted_stripe_falls_back_globally(self):
        alloc = ExtentAllocator(base=0, size=400, num_shards=4)
        alloc.allocate(100, shard=0)
        # Stripe 0 is full; the allocation still succeeds elsewhere.
        extent = alloc.allocate(50, shard=0)
        assert alloc.shard_of(extent.offset) != 0

    def test_bad_shard_rejected(self):
        alloc = ExtentAllocator(base=0, size=400, num_shards=4)
        with pytest.raises(ValueError):
            alloc.allocate(10, shard=4)

    def test_free_and_invariants_across_stripes(self):
        alloc = ExtentAllocator(base=0, size=4096, num_shards=4)
        extents = [alloc.allocate(64, shard=s) for s in range(4)]
        for extent in extents:
            alloc.free(extent)
        alloc.check_invariants()
        assert alloc.free_bytes == 4096

    def test_single_shard_is_plain_first_fit(self):
        alloc = ExtentAllocator(base=0, size=4096, num_shards=1)
        a = alloc.allocate(64, shard=0)
        b = alloc.allocate(64, shard=0)
        assert (a.offset, b.offset) == (0, 64)

    def test_reserve_survives_striping(self):
        alloc = ExtentAllocator(base=0, size=4096, num_shards=4)
        alloc.reserve(Extent(offset=2048, length=64))
        taken = alloc.allocate(64, shard=2)
        assert taken.offset != 2048


class TestShardedRoundTrip:
    def checkpoint(self, store, n_pages, tag):
        batch = store.begin_batch()
        pages = [
            batch.add_page(b"%s-page-%04d" % (tag, i)) for i in range(n_pages)
        ]
        meta = batch.add_meta(oid=1, value={"tag": tag.decode()})
        snapshot = store.commit_snapshot(
            tag.decode(), {"gen": tag.decode()}, [meta], pages
        )
        return snapshot, pages

    def test_batch_spreads_pages_over_all_shards(self, mq_store):
        _snap, pages = self.checkpoint(mq_store, 32, b"spread")
        shards = {
            mq_store.allocator.shard_of(p.extent.offset) for p in pages
        }
        assert shards == {0, 1, 2, 3}

    def test_every_page_readable_after_recovery(self, mq_store):
        _snap, pages = self.checkpoint(mq_store, 48, b"rt")
        mq_store.flush_barrier()
        mq_store.device.crash()
        report = mq_store.recover()
        assert report.snapshots_recovered == 1
        assert not report.errors
        for i, ref in enumerate(pages):
            payload = mq_store.read_page(ref)
            assert payload == b"rt-page-%04d" % i
            assert ObjectStore.page_hash(payload) == ref.content_hash

    def test_recovered_manifest_covers_all_shards(self, mq_store):
        snap, _pages = self.checkpoint(mq_store, 32, b"mf")
        mq_store.flush_barrier()
        mq_store.device.crash()
        mq_store.recover()
        recovered = mq_store.snapshot_by_name("mf")
        assert recovered is not None
        _meta, _records, pages = mq_store.load_manifest(recovered)
        shards = {
            mq_store.allocator.shard_of(p.extent.offset) for p in pages
        }
        assert shards == {0, 1, 2, 3}
        for ref in pages:
            assert (
                ObjectStore.page_hash(mq_store.read_page(ref))
                == ref.content_hash
            )

    def test_torn_sharded_checkpoint_discarded_as_a_unit(self, mq_store):
        # First checkpoint becomes durable; the second's sharded flush
        # is cut mid-air — recovery must keep exactly the first.
        self.checkpoint(mq_store, 16, b"keep")
        mq_store.flush_barrier()
        batch = mq_store.begin_batch()
        for i in range(16):
            batch.add_page(b"torn-%04d" % i)
        batch.flush()
        mq_store.device.crash()  # records in flight on several queues
        report = mq_store.recover()
        assert report.snapshots_recovered == 1
        assert mq_store.snapshot_by_name("keep") is not None

    def test_multiple_checkpoints_share_striped_pages(self, mq_store):
        _s1, pages1 = self.checkpoint(mq_store, 24, b"a")
        batch = mq_store.begin_batch()
        # Re-add the same content: all 24 dedup against checkpoint 1.
        reused = [batch.add_page(b"a-page-%04d" % i) for i in range(24)]
        fresh = [batch.add_page(b"b-page-%04d" % i) for i in range(8)]
        meta = batch.add_meta(oid=1, value={"tag": "b"})
        mq_store.commit_snapshot("b", {}, [meta], reused + fresh)
        assert mq_store.stats.pages_deduped == 24
        assert [r.extent for r in reused] == [p.extent for p in pages1]
        mq_store.flush_barrier()
        mq_store.device.crash()
        report = mq_store.recover()
        assert report.snapshots_recovered == 2
        for i, ref in enumerate(fresh):
            assert mq_store.read_page(ref) == b"b-page-%04d" % i
