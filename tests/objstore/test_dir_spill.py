"""Superblock directory spillover: fleets outgrow the 8 KiB slot.

A thousand deployed functions means a thousand snapshots in one
store's directory; the encoded directory long ago stopped fitting the
fixed superblock slot.  When it overflows, the directory is written as
a META record in the data area and the superblock holds only a tiny
stub pointing at it — byte-identical to the inline format while the
directory still fits, so small stores and the crash sweep see no
change.
"""

import pytest

from repro.hw.nvme import NvmeDevice
from repro.objstore.block import HEADER_SIZE, SUPERBLOCK_SLOT_SIZE
from repro.objstore.fsck import Fsck
from repro.objstore.record import decode
from repro.objstore.store import DIR_SPILL_KEY, ObjectStore
from repro.sim.clock import SimClock


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def nvme(clock):
    return NvmeDevice(clock)


@pytest.fixture
def store(nvme):
    return ObjectStore(nvme)


def commit(store, name):
    ref = store.write_meta(oid=0, value={"n": name})
    page = store.write_page(b"pg-%s" % name.encode())
    return store.commit_snapshot(
        name, meta={"n": name}, records=[ref], pages=[page]
    )


def commit_until_spilled(store, limit=400):
    """Commit snapshots until the directory leaves the superblock."""
    count = 0
    while store._dir_spill is None:
        assert count < limit, "directory never spilled"
        commit(store, f"snap-{count:04d}")
        count += 1
    return count


class TestSpillFormat:
    def test_small_directory_stays_inline(self, store, nvme):
        for i in range(3):
            commit(store, f"snap-{i}")
        assert store._dir_spill is None
        _gen, payload = store.volume.read_superblock()
        # Inline format: the directory itself (a LIST), not a stub.
        assert isinstance(decode(payload), list)

    def test_overflow_moves_directory_to_data_area(self, store):
        commit_until_spilled(store)
        _gen, payload = store.volume.read_superblock()
        stub = decode(payload)
        assert isinstance(stub, dict)
        offset, length = stub[DIR_SPILL_KEY]
        assert (offset, length) == (
            store._dir_spill.offset, store._dir_spill.length
        )
        assert HEADER_SIZE + length > SUPERBLOCK_SLOT_SIZE

    def test_old_spill_extent_becomes_garbage(self, store):
        commit_until_spilled(store)
        first_spill = store._dir_spill
        commit(store, "one-more")
        assert store._dir_spill.offset != first_spill.offset
        assert first_spill in store.garbage


class TestSpillRecovery:
    def test_recover_spilled_directory(self, store, nvme):
        count = commit_until_spilled(store)
        commit(store, "tail")
        reopened = ObjectStore(nvme)
        reopened.recover()
        assert len(reopened.directory.snapshots) == count + 1
        assert reopened.snapshot_by_name("tail") is not None
        assert reopened._dir_spill is not None

    def test_recovered_allocator_reserves_spill_extent(self, store, nvme):
        commit_until_spilled(store)
        reopened = ObjectStore(nvme)
        reopened.recover()
        spill = reopened._dir_spill
        # New writes must not land on the live directory record.
        ref = reopened.write_page(b"fresh-after-recover")
        assert not (
            ref.extent.offset < spill.offset + spill.length
            and spill.offset < ref.extent.offset + ref.extent.length
        )

    def test_delete_can_shrink_back_inline(self, store, nvme):
        count = commit_until_spilled(store)
        snap_ids = sorted(store.directory.snapshots)
        for snap_id in snap_ids[: count - 3]:
            store.delete_snapshot(snap_id)
        assert store._dir_spill is None
        reopened = ObjectStore(nvme)
        reopened.recover()
        assert len(reopened.directory.snapshots) == len(
            store.directory.snapshots
        )


class TestSpillFsck:
    def test_fsck_clean_on_spilled_store(self, store, nvme):
        commit_until_spilled(store)
        report = Fsck(ObjectStore(nvme)).run()
        assert report.clean, [f.to_dict() for f in report.findings]

    def test_fsck_repair_rewrites_spilled_directory(self, store, nvme):
        commit_until_spilled(store)
        # Orphan a snapshot by hand to force a repairable finding.
        victim_id = max(store.directory.snapshots)
        store.directory.snapshots.pop(victim_id)
        store._write_directory(sync=True)
        checker = Fsck(ObjectStore(nvme), repair=True)
        report = checker.run()
        second = Fsck(ObjectStore(nvme)).run()
        assert second.clean, [f.to_dict() for f in second.findings]
