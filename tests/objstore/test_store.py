"""Unit tests for the object store: snapshots, dedup, recovery, GC."""

import pytest

from repro.errors import NoSuchObject
from repro.hw.nvme import NvmeDevice
from repro.objstore.gc import GarbageCollector
from repro.objstore.store import ObjectStore
from repro.sim.clock import SimClock
from repro.units import PAGE_SIZE


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def nvme(clock):
    return NvmeDevice(clock)


@pytest.fixture
def store(nvme):
    return ObjectStore(nvme)


def commit(store, name, values=(), pages=(), parent=None):
    records = [store.write_meta(oid=i, value=v) for i, v in enumerate(values)]
    refs = [store.write_page(p) for p in pages]
    return store.commit_snapshot(
        name, meta={"n": name}, records=records, pages=refs,
        parent_id=parent.snap_id if parent else None,
    )


class TestRecords:
    def test_meta_roundtrip(self, store):
        ref = store.write_meta(oid=9, value={"pid": 7, "name": "redis"})
        assert store.read_meta(ref) == {"pid": 7, "name": "redis"}

    def test_page_roundtrip(self, store):
        ref = store.write_page(b"page content")
        assert store.read_page(ref) == b"page content"

    def test_page_dedup(self, store):
        a = store.write_page(b"identical")
        b = store.write_page(b"identical")
        assert a.extent.offset == b.extent.offset
        assert store.stats.pages_written == 1
        assert store.stats.pages_deduped == 1

    def test_dedup_normalizes_zero_padding(self, store):
        a = store.write_page(b"data")
        b = store.write_page(b"data" + b"\x00" * 64)
        assert a.content_hash == b.content_hash

    def test_coalesced_bulk_read(self, store, nvme):
        refs = [store.write_page(b"pg-%d" % i) for i in range(50)]
        reads_before = nvme.stats.reads
        payloads = store.read_pages_coalesced(refs)
        assert len(payloads) == 50
        assert payloads[refs[7].content_hash] == b"pg-7"
        # Far fewer device ops than pages (sequential layout).
        assert nvme.stats.reads - reads_before <= 3

    def test_logical_page_size_charged(self, store, nvme):
        store.write_page(b"tiny")
        assert nvme.stats.bytes_written >= PAGE_SIZE


class TestSnapshots:
    def test_commit_and_load(self, store):
        snap = commit(store, "ckpt", values=[{"a": 1}], pages=[b"pg"])
        meta, records, pages = store.load_manifest(snap)
        assert meta == {"n": "ckpt"}
        assert store.read_meta(records[0]) == {"a": 1}
        assert store.read_page(pages[0]) == b"pg"

    def test_snapshot_directory(self, store):
        commit(store, "one")
        commit(store, "two")
        assert [s.name for s in store.snapshots()] == ["one", "two"]
        assert store.snapshot_by_name("two") is not None

    def test_shared_pages_refcounted(self, store):
        ref = store.write_page(b"shared")
        store.commit_snapshot("a", meta=None, records=[], pages=[ref])
        store.commit_snapshot("b", meta=None, records=[], pages=[ref])
        assert store.dedup.refcount(ref.content_hash) == 2

    def test_delete_releases_refs(self, store):
        ref = store.write_page(b"shared")
        snap_a = store.commit_snapshot("a", meta=None, records=[], pages=[ref])
        store.commit_snapshot("b", meta=None, records=[], pages=[ref])
        store.delete_snapshot(snap_a.snap_id)
        assert store.dedup.refcount(ref.content_hash) == 1
        assert store.snapshot_by_name("a") is None

    def test_delete_last_ref_frees_extent(self, store):
        ref = store.write_page(b"doomed")
        snap = store.commit_snapshot("a", meta=None, records=[], pages=[ref])
        store.delete_snapshot(snap.snap_id)
        assert store.dedup.refcount(ref.content_hash) == 0
        assert len(store.garbage) > 0

    def test_delete_unknown_snapshot(self, store):
        with pytest.raises(NoSuchObject):
            store.delete_snapshot(999)

    def test_delta_bytes_tracked(self, store):
        big = commit(store, "big", pages=[b"p%d" % i for i in range(10)])
        small = commit(store, "small", pages=[b"p0"])  # all dedup hits
        assert big.delta_bytes > small.delta_bytes


class TestGc:
    def test_collect_returns_space(self, store):
        snap = commit(store, "a", values=[{"x": 1}], pages=[b"data"])
        used_before = store.allocator.allocated_bytes
        store.delete_snapshot(snap.snap_id)
        gc = GarbageCollector(store)
        report = gc.collect()
        assert report.extents_freed >= 3  # meta + page + manifest
        assert store.allocator.allocated_bytes < used_before

    def test_collect_bounded(self, store):
        snap = commit(store, "a", values=[{"x": 1}], pages=[b"p1", b"p2"])
        store.delete_snapshot(snap.snap_id)
        gc = GarbageCollector(store)
        first = gc.collect(limit=1)
        assert first.extents_freed == 1
        assert gc.pending() > 0
        gc.collect()
        assert gc.pending() == 0

    def test_gc_does_not_touch_live_data(self, store):
        keep = commit(store, "keep", values=[{"v": 1}], pages=[b"live"])
        doomed = commit(store, "doomed", pages=[b"dead"])
        store.delete_snapshot(doomed.snap_id)
        GarbageCollector(store).collect()
        meta, records, pages = store.load_manifest(keep)
        assert store.read_meta(records[0]) == {"v": 1}
        assert store.read_page(pages[0]) == b"live"

    def test_freed_space_reusable(self, store):
        snap = commit(store, "a", pages=[b"x" * 2000])
        store.delete_snapshot(snap.snap_id)
        GarbageCollector(store).collect()
        store.allocator.check_invariants()
        commit(store, "b", pages=[b"y" * 2000])  # no StoreFullError


class TestRecovery:
    def test_recover_durable_snapshots(self, store, nvme):
        commit(store, "alpha", values=[{"k": "v"}], pages=[b"page"])
        store.flush_barrier()
        nvme.crash()
        fresh = ObjectStore(nvme)
        report = fresh.recover()
        assert report.snapshots_recovered == 1
        snap = fresh.snapshot_by_name("alpha")
        meta, records, pages = fresh.load_manifest(snap)
        assert fresh.read_meta(records[0]) == {"k": "v"}

    def test_torn_checkpoint_discarded_as_unit(self, store, nvme):
        commit(store, "durable")
        store.flush_barrier()
        commit(store, "torn", values=[{"x": 1}], pages=[b"data"])
        nvme.crash()  # tears the un-flushed snapshot
        fresh = ObjectStore(nvme)
        report = fresh.recover()
        assert report.snapshots_recovered == 1
        assert fresh.snapshot_by_name("torn") is None
        assert fresh.snapshot_by_name("durable") is not None

    def test_recovery_rebuilds_dedup_and_allocator(self, store, nvme):
        snap = commit(store, "a", pages=[b"shared", b"unique"])
        commit(store, "b", pages=[b"shared"])
        store.flush_barrier()
        fresh = ObjectStore(nvme)
        fresh.recover()
        _, _, pages = fresh.load_manifest(fresh.snapshot_by_name("a"))
        shared_hash = ObjectStore.page_hash(b"shared")
        assert fresh.dedup.refcount(shared_hash) == 2
        # New writes do not collide with recovered extents.
        new_ref = fresh.write_page(b"post-recovery")
        assert fresh.read_page(new_ref) == b"post-recovery"
        for ref in pages:
            assert fresh.read_page(ref) in (b"shared", b"unique")

    def test_empty_device_recovers_empty(self, nvme):
        fresh = ObjectStore(nvme)
        report = fresh.recover()
        assert report.snapshots_recovered == 0
        assert fresh.snapshots() == []

    def test_recovered_ids_do_not_collide(self, store, nvme):
        commit(store, "a")
        commit(store, "b")
        store.flush_barrier()
        fresh = ObjectStore(nvme)
        fresh.recover()
        new = commit(fresh, "c")
        ids = [s.snap_id for s in fresh.snapshots()]
        assert len(ids) == len(set(ids))
        assert new.snap_id == max(ids)

    def test_superblock_ab_slots_alternate(self, store, nvme):
        commit(store, "one")
        gen1 = store.volume.generation
        commit(store, "two")
        assert store.volume.generation == gen1 + 1
        store.flush_barrier()
        fresh = ObjectStore(nvme)
        report = fresh.recover()
        assert report.generation == gen1 + 1
        assert len(fresh.snapshots()) == 2

    def test_physical_bytes_accounting(self, store):
        assert store.physical_bytes() == 0
        commit(store, "a", values=[{"x": 1}], pages=[b"data"])
        assert store.physical_bytes() > 0
