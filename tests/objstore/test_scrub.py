"""Online scrub (repro.objstore.scrub): bounded background verify.

The scrubber's contract: visit every reachable extent exactly once in
media order, read over the idlest submission queues, never write, and
report damage in fsck's finding vocabulary.
"""

import copy

import pytest

from repro.cli.recovery import build_demo_store, inject
from repro.errors import ObjectStoreError
from repro.fault.names import FP_SCRUB_STEP
from repro.fault.registry import FailpointRegistry, FaultAction
from repro.hw.nvme import NvmeDevice
from repro.objstore import ObjectStore, Scrubber
from repro.objstore.fsck import CHECKSUM_CORRUPT
from repro.sim.clock import SimClock


class TestScrub:
    def test_clean_store_scrubs_clean(self):
        _device, store, _obs = build_demo_store()
        scrubber = Scrubber(store, batch_extents=4)
        stats = scrubber.run()
        assert stats.done
        assert stats.errors == 0
        assert stats.extents_total > 0
        assert stats.extents_verified == stats.extents_total
        assert stats.progress_permille == 1000
        assert "clean" in scrubber.summary()

    def test_steps_are_bounded_by_batch(self):
        _device, store, _obs = build_demo_store()
        scrubber = Scrubber(store, batch_extents=1)
        stats = scrubber.run()
        # one extent per step: step count == worklist size, and the
        # exhausted scrubber's next step is a no-op
        assert stats.steps == stats.extents_total
        assert scrubber.step() == 0

    def test_worklist_is_sorted_and_unique(self):
        _device, store, _obs = build_demo_store()
        offsets = [item.extent.offset for item in Scrubber(store)._worklist]
        assert offsets == sorted(offsets)
        assert len(offsets) == len(set(offsets))

    def test_detects_checksum_damage(self):
        device, store, _obs = build_demo_store()
        inject(device, store, "checksum")
        scrubber = Scrubber(store, batch_extents=4)
        stats = scrubber.run()
        assert stats.errors == 1
        (finding,) = scrubber.findings
        assert finding.kind == CHECKSUM_CORRUPT
        assert finding.snapshot == "demo-1"

    def test_scrub_never_writes(self):
        device, store, _obs = build_demo_store()
        media_before = copy.deepcopy(device._blocks)
        allocated_before = store.allocator.allocated_bytes
        Scrubber(store, batch_extents=8).run()
        assert device._blocks == media_before
        assert store.allocator.allocated_bytes == allocated_before

    def test_empty_store_is_immediately_done(self):
        clock = SimClock()
        device = NvmeDevice(clock, name="empty", queue_depth=8, num_queues=4)
        store = ObjectStore(device)
        stats = Scrubber(store).run()
        assert stats.done
        assert stats.extents_total == 0
        assert stats.progress_permille == 1000

    def test_batch_must_be_positive(self):
        _device, store, _obs = build_demo_store()
        with pytest.raises(ValueError):
            Scrubber(store, batch_extents=0)


class TestScrubFaultsAndObs:
    def test_step_failpoint_fail_action(self):
        device, store, _obs = build_demo_store()
        faults = FailpointRegistry(device.clock, seed=7)
        store.attach_faults(faults)
        faults.arm(FP_SCRUB_STEP, FaultAction("fail"))
        scrubber = Scrubber(store, batch_extents=4)
        with pytest.raises(ObjectStoreError):
            scrubber.step()
        # the armed point is consumed; the pass finishes afterwards
        assert scrubber.run().done

    def test_progress_and_counters_exported(self):
        _device, store, obs = build_demo_store()
        scrubber = Scrubber(store, batch_extents=8)
        scrubber.run()
        by_name = {
            inst.name: inst.value for inst in obs.registry.collect()
        }
        assert by_name["objstore.scrub.progress_permille"] == 1000
        assert (by_name["objstore.scrub.extents_verified_total"]
                == scrubber.stats.extents_total)
        assert "objstore.scrub.errors_total" in by_name
