"""Corruption fuzzing: recovery never crashes, never serves bad data.

The store's integrity contract: whatever bytes get flipped on the
medium, recovery either reproduces a snapshot's data exactly or
discards that snapshot — it must never return silently corrupted
content or raise an unhandled error.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AuroraError
from repro.hw.nvme import NvmeDevice
from repro.objstore.store import ObjectStore
from repro.sim.clock import SimClock


def build_device(n_snapshots=3, pages_per_snap=4):
    clock = SimClock()
    device = NvmeDevice(clock)
    store = ObjectStore(device)
    expected = {}
    for s in range(n_snapshots):
        payloads = [b"snap%d-page%d" % (s, i) for i in range(pages_per_snap)]
        refs = [store.write_page(p) for p in payloads]
        meta = store.write_meta(oid=s, value={"snap": s})
        store.commit_snapshot(f"s{s}", meta={"s": s}, records=[meta],
                              pages=refs)
        expected[f"s{s}"] = sorted(payloads)
    store.flush_barrier()
    return device, expected


@settings(max_examples=40, deadline=None)
@given(
    flips=st.lists(
        st.tuples(st.integers(0, 200_000), st.integers(1, 255)),
        min_size=1, max_size=8,
    )
)
def test_recovery_detects_or_survives_corruption(flips):
    device, expected = build_device()
    # Flip bytes directly on the media.
    for offset, xor in flips:
        block_no, within = divmod(offset, 4096)
        block = device._blocks.get(block_no)
        if block is not None:
            block[within] ^= xor
    fresh = ObjectStore(device)
    report = fresh.recover()  # must not raise
    for snapshot in fresh.snapshots():
        # Anything recovery kept must read back bit-exact.
        try:
            _meta, records, pages = fresh.load_manifest(snapshot)
            got = sorted(fresh.read_page(r) for r in pages)
        except AuroraError:
            # Detected on access — acceptable: never silent corruption.
            continue
        if snapshot.name in expected:
            assert got == expected[snapshot.name]
    assert report.snapshots_recovered + report.snapshots_discarded <= len(expected)


class TestTargetedCorruption:
    def test_corrupt_page_record_discards_snapshot(self):
        device, expected = build_device(n_snapshots=1)
        store = ObjectStore(device)
        store.recover()
        snap = store.snapshots()[0]
        _m, _r, pages = store.load_manifest(snap)
        # Corrupt the first page record's payload on the media.
        target = pages[0].extent.offset + 40
        block_no, within = divmod(target, 4096)
        device._blocks[block_no][within] ^= 0xFF
        fresh = ObjectStore(device)
        report = fresh.recover()
        assert report.snapshots_discarded == 1
        assert fresh.snapshots() == []

    def test_corrupt_both_superblocks_recovers_empty(self):
        device, expected = build_device(n_snapshots=2)
        for slot_base in (0, 8 * 1024):
            block_no = slot_base // 4096
            device._blocks.setdefault(block_no, bytearray(4096))[0] ^= 0xFF
        fresh = ObjectStore(device)
        report = fresh.recover()
        assert report.snapshots_recovered == 0
        assert fresh.snapshots() == []

    def test_corrupt_one_superblock_uses_other(self):
        device, expected = build_device(n_snapshots=2)
        # Generation 2 lives in slot 0 (gen % 2); kill it, gen 1 survives.
        device._blocks[0][0] ^= 0xFF
        fresh = ObjectStore(device)
        report = fresh.recover()
        assert report.generation == 1
        assert [s.name for s in fresh.snapshots()] == ["s0"]
