"""Dedup release/refcount paths interacting with garbage collection."""

import pytest

from repro.hw.nvme import NvmeDevice
from repro.objstore.alloc import Extent
from repro.objstore.dedup import DedupIndex
from repro.objstore.gc import GarbageCollector
from repro.objstore.store import ObjectStore
from repro.sim.clock import SimClock


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def store(clock):
    return ObjectStore(NvmeDevice(clock))


HASH_A = b"\xaa" * 32
HASH_B = b"\xbb" * 32


class TestDedupIndex:
    def test_release_of_last_ref_returns_extent(self):
        index = DedupIndex()
        extent = Extent(4096, 4096)
        index.insert(HASH_A, extent)
        index.hold(HASH_A)
        index.hold(HASH_A)
        assert index.release(HASH_A) is None
        assert index.refcount(HASH_A) == 1
        assert index.release(HASH_A) == extent
        assert index.refcount(HASH_A) == 0
        assert HASH_A not in index.entries()

    def test_release_underflow_is_an_error(self):
        index = DedupIndex()
        index.insert(HASH_A, Extent(0, 4096))
        with pytest.raises(AssertionError):
            index.release(HASH_A)

    def test_release_unknown_hash_raises(self):
        index = DedupIndex()
        with pytest.raises(KeyError):
            index.release(HASH_B)

    def test_reinsert_after_full_release(self):
        index = DedupIndex()
        index.insert(HASH_A, Extent(0, 4096))
        index.hold(HASH_A)
        index.release(HASH_A)
        # The hash fully drained; the same content may be stored anew.
        index.insert(HASH_A, Extent(8192, 4096))
        assert index.refcount(HASH_A) == 0

    def test_double_insert_rejected(self):
        index = DedupIndex()
        index.insert(HASH_A, Extent(0, 4096))
        with pytest.raises(AssertionError):
            index.insert(HASH_A, Extent(4096, 4096))

    def test_bytes_deduped_counts_shared_holds_only(self):
        index = DedupIndex()
        index.insert(HASH_A, Extent(0, 4096))
        index.hold(HASH_A, nbytes=4096)  # first hold: not a dedup win
        index.hold(HASH_A, nbytes=4096)
        index.hold(HASH_A, nbytes=4096)
        assert index.stats.bytes_deduped == 2 * 4096


class TestReleaseFeedsGc:
    def test_last_snapshot_delete_queues_extent_for_gc(self, store):
        ref = store.write_page(b"reclaim me")
        snap = store.commit_snapshot("only", meta=None, records=[], pages=[ref])
        assert not store.garbage
        store.delete_snapshot(snap.snap_id)
        assert ref.extent in store.garbage
        gc = GarbageCollector(store)
        report = gc.collect()
        assert report.extents_freed >= 1
        assert not store.garbage

    def test_shared_page_survives_partial_delete(self, store):
        ref = store.write_page(b"shared page")
        snap_a = store.commit_snapshot("a", meta=None, records=[], pages=[ref])
        store.commit_snapshot("b", meta=None, records=[], pages=[ref])
        store.delete_snapshot(snap_a.snap_id)
        gc = GarbageCollector(store)
        gc.collect()
        assert store.dedup.refcount(ref.content_hash) == 1
        assert store.read_page(ref) == b"shared page"

    def test_reclaimed_extent_is_reallocated(self, store):
        ref = store.write_page(b"recycle")
        snap = store.commit_snapshot("gone", meta=None, records=[], pages=[ref])
        store.delete_snapshot(snap.snap_id)
        GarbageCollector(store).collect()
        # First-fit allocation reuses the freed extent for new data.
        fresh = store.write_page(b"fresh tenant")
        assert fresh.extent.offset <= ref.extent.offset

    def test_gc_limit_bounds_reclaim_batch(self, store):
        refs = [store.write_page(b"bulk-%d" % i) for i in range(5)]
        snap = store.commit_snapshot("bulk", meta=None, records=[], pages=refs)
        store.delete_snapshot(snap.snap_id)
        pending_before = len(store.garbage)
        assert pending_before >= 5
        gc = GarbageCollector(store)
        report = gc.collect(limit=2)
        assert report.extents_freed == 2
        assert gc.pending() == pending_before - 2
        gc.collect()
        assert gc.pending() == 0

    def test_batched_writes_release_like_unbatched(self, store):
        batch = store.begin_batch()
        refs = [batch.add_page(b"via-batch-%d" % i) for i in range(3)]
        snap = store.commit_snapshot(
            "batched", meta=None, records=[], pages=refs
        )
        store.delete_snapshot(snap.snap_id)
        for ref in refs:
            assert store.dedup.refcount(ref.content_hash) == 0
        report = GarbageCollector(store).collect()
        assert report.extents_freed >= 3
