"""Unit tests for checksums, record framing, and the metadata codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ChecksumError, ObjectStoreError
from repro.objstore.checksum import fletcher64, verify
from repro.objstore.record import (
    HEADER_SIZE,
    KIND_META,
    decode,
    encode,
    pack_record,
    unpack_header,
    unpack_record,
)


class TestFletcher64:
    def test_deterministic(self):
        assert fletcher64(b"hello") == fletcher64(b"hello")

    def test_discriminates(self):
        assert fletcher64(b"hello") != fletcher64(b"hellp")

    def test_order_sensitive(self):
        assert fletcher64(b"ab" * 10) != fletcher64(b"ba" * 10)

    def test_empty(self):
        assert fletcher64(b"") == 0

    def test_verify(self):
        assert verify(b"data", fletcher64(b"data"))
        assert not verify(b"data", fletcher64(b"data") + 1)

    def test_unaligned_tail(self):
        assert fletcher64(b"abcde") != fletcher64(b"abcd")


class TestRecordFraming:
    def test_roundtrip(self):
        raw = pack_record(kind=KIND_META, oid=7, epoch=3, payload=b"payload")
        header, payload = unpack_record(raw)
        assert header.oid == 7
        assert header.epoch == 3
        assert payload == b"payload"

    def test_corrupt_payload_detected(self):
        raw = bytearray(pack_record(KIND_META, 1, 1, b"sensitive"))
        raw[HEADER_SIZE] ^= 0xFF
        with pytest.raises(ChecksumError):
            unpack_record(bytes(raw))

    def test_bad_magic_detected(self):
        raw = bytearray(pack_record(KIND_META, 1, 1, b"x"))
        raw[0] ^= 0xFF
        with pytest.raises(ChecksumError):
            unpack_header(bytes(raw))

    def test_truncated_payload_detected(self):
        raw = pack_record(KIND_META, 1, 1, b"0123456789")
        with pytest.raises(ChecksumError):
            unpack_record(raw[: HEADER_SIZE + 4])

    def test_short_header(self):
        with pytest.raises(ObjectStoreError):
            unpack_header(b"tiny")


class TestCodec:
    CASES = [
        None,
        True,
        False,
        0,
        12345678901234567890,
        -42,
        3.14159,
        b"",
        b"\x00\xff binary",
        "",
        "unicode: αβγ→",
        [],
        [1, "two", b"three", None],
        {},
        {"a": 1, "b": [2, 3]},
        {1: "int-key", b"bytes": "bytes-key"},
        {"nested": {"deep": [{"x": b"\x00"}]}},
    ]

    @pytest.mark.parametrize("value", CASES, ids=lambda v: repr(v)[:40])
    def test_roundtrip(self, value):
        assert decode(encode(value)) == value

    def test_deterministic_dict_order(self):
        a = encode({"x": 1, "y": 2})
        b = encode({"y": 2, "x": 1})
        assert a == b

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ObjectStoreError):
            decode(encode(1) + b"junk")

    def test_unencodable_type_rejected(self):
        with pytest.raises(TypeError):
            encode(object())

    def test_tuple_decodes_as_list(self):
        assert decode(encode((1, 2))) == [1, 2]


json_like = st.recursive(
    st.none()
    | st.booleans()
    | st.integers()
    | st.binary(max_size=64)
    | st.text(max_size=32),
    lambda children: st.lists(children, max_size=5)
    | st.dictionaries(st.text(max_size=8), children, max_size=5),
    max_leaves=20,
)


@settings(max_examples=150, deadline=None)
@given(value=json_like)
def test_codec_roundtrip_property(value):
    assert decode(encode(value)) == value


@settings(max_examples=100, deadline=None)
@given(payload=st.binary(max_size=2048), oid=st.integers(0, 2**60),
       epoch=st.integers(0, 2**60))
def test_record_roundtrip_property(payload, oid, epoch):
    header, out = unpack_record(pack_record(KIND_META, oid, epoch, payload))
    assert out == payload
    assert header.oid == oid
    assert header.epoch == epoch
