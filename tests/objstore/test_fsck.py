"""Offline fsck (repro.objstore.fsck): detect, classify, repair.

Corruption fixtures come from ``repro.cli.recovery`` so the worked
examples in RECOVERY.md, the ``sls fsck --inject`` subcommand, and
these tests share one set of injection recipes — a damage class the
docs demonstrate is, by construction, a damage class the suite pins.
"""

import json

import pytest

from repro.cli.recovery import INJECTIONS, build_demo_store, inject
from repro.errors import ObjectStoreError, PowerCut
from repro.fault.names import FP_FSCK_REPAIR
from repro.fault.registry import FailpointRegistry, FaultAction
from repro.objstore import ObjectStore, check_store, repair_store
from repro.objstore.block import DATA_BASE
from repro.objstore.fsck import (
    CHECKSUM_CORRUPT,
    DANGLING_REF,
    DELTA_BROKEN_BASE,
    DELTA_CHAIN_TOO_DEEP,
    DOUBLE_ALLOC,
    LOST_AND_FOUND,
    ORPHAN_EXTENT,
    REFCOUNT_DRIFT,
    Fsck,
)

#: which finding classes each named injection must produce
EXPECTED_CLASSES = {
    "checksum": {CHECKSUM_CORRUPT},
    "refcount": {REFCOUNT_DRIFT},
    "orphan": {ORPHAN_EXTENT},
    # aiming a second ref at demo-0's page is both a double claim and,
    # because the extent holds a page record where a metadata record
    # was referenced, a dangling ref from the evil snapshot
    "double-alloc": {DANGLING_REF, DOUBLE_ALLOC},
    "dangling": {DANGLING_REF},
    "delta-base": {DELTA_BROKEN_BASE},
    "delta-deep": {DELTA_CHAIN_TOO_DEEP},
}


def snapshot_payloads(store):
    """name -> sorted page payloads, for byte-identical comparisons."""
    out = {}
    for snapshot in store.snapshots():
        _meta, _records, pages = store.load_manifest(snapshot)
        payloads = store.read_pages_coalesced(pages)
        out[snapshot.name] = sorted(payloads[p.content_hash] for p in pages)
    return out


def zero_superblocks(device):
    for block_no in range(DATA_BASE // 4096):
        if block_no in device._blocks:
            device._blocks[block_no][:] = bytes(4096)


class TestDetect:
    def test_clean_store_fscks_clean(self):
        _device, store, _obs = build_demo_store()
        report = check_store(store)
        assert report.clean
        assert report.snapshots_checked == 3
        assert report.records_verified >= 3
        assert report.pages_verified >= 3
        assert report.bytes_verified > 0

    @pytest.mark.parametrize("kind", INJECTIONS)
    def test_injection_detected_and_classified(self, kind):
        device, store, _obs = build_demo_store()
        inject(device, store, kind)
        report = check_store(store)
        assert not report.clean
        assert set(report.counts()) == EXPECTED_CLASSES[kind]
        # a bare check never repairs anything
        assert not any(f.repaired for f in report.findings)

    def test_report_serializes(self):
        device, store, _obs = build_demo_store()
        inject(device, store, "checksum")
        report = check_store(store)
        value = json.loads(report.to_json())
        assert value["clean"] is False
        assert value["findings"][0]["kind"] == CHECKSUM_CORRUPT
        assert "fsck" in report.summary()


class TestRepair:
    @pytest.mark.parametrize("kind", INJECTIONS)
    def test_repair_is_complete_and_idempotent(self, kind):
        device, store, _obs = build_demo_store()
        inject(device, store, kind)
        report = repair_store(store)
        assert report.findings and report.repaired_all
        # idempotence: the second pass has nothing left to find
        second = check_store(store)
        assert second.clean, second.summary()

    def test_intact_snapshots_restore_byte_identical(self):
        device, store, _obs = build_demo_store()
        baseline = snapshot_payloads(store)
        inject(device, store, "checksum")  # damages demo-1
        report = repair_store(store)
        assert report.repaired_all
        after = snapshot_payloads(store)
        assert after["demo-0"] == baseline["demo-0"]
        assert after["demo-2"] == baseline["demo-2"]
        # demo-1 was quarantined: its salvageable pages survive under a
        # lost+found name, every one byte-identical to the original
        assert "demo-1" not in after
        (quarantine,) = report.quarantined
        assert quarantine.startswith(LOST_AND_FOUND + "demo-1")
        salvaged = after[quarantine]
        assert salvaged
        assert all(page in baseline["demo-1"] for page in salvaged)

    def test_orphan_repair_reclaims_the_leak(self):
        device, store, _obs = build_demo_store()
        allocated_before = store.allocator.allocated_bytes
        inject(device, store, "orphan")
        report = repair_store(store)
        assert report.repaired_all
        assert report.bytes_reclaimed >= 4096
        assert store.allocator.allocated_bytes == allocated_before

    def test_repair_requires_quiescence(self):
        _device, store, _obs = build_demo_store()
        batch = store.begin_batch()
        batch.add_page(b"buffered" * 512)
        with pytest.raises(ObjectStoreError, match="quiescent"):
            Fsck(store, repair=True).run()
        # the read-only check has no such requirement
        check_store(store)

    def test_lost_superblock_is_report_only(self):
        device, store, _obs = build_demo_store()
        zero_superblocks(device)
        report = repair_store(store)
        assert not report.clean
        assert report.findings[0].kind == CHECKSUM_CORRUPT
        assert report.findings[0].action == "report-only"
        assert not report.repaired_all
        # repair must not have "fixed" this by writing a fresh (empty)
        # superblock over the dead slots
        assert device.read(0, 4096) == bytes(4096)


class TestRepairCrash:
    def test_crash_at_repair_failpoint_is_recoverable(self):
        device, store, _obs = build_demo_store()
        inject(device, store, "checksum")
        faults = FailpointRegistry(device.clock, seed=7)
        store.attach_faults(faults)
        faults.arm(FP_FSCK_REPAIR, FaultAction("crash"))
        with pytest.raises(PowerCut):
            repair_store(store)
        device.crash()
        # reopen cold off the media and repair again: the failpoint
        # fires before any write, so the damage is exactly as injected
        reopened = ObjectStore(device)
        report = repair_store(reopened)
        assert report.findings and report.repaired_all
        assert check_store(reopened).clean

    def test_fail_action_surfaces_as_store_error(self):
        device, store, _obs = build_demo_store()
        inject(device, store, "orphan")
        faults = FailpointRegistry(device.clock, seed=7)
        store.attach_faults(faults)
        faults.arm(FP_FSCK_REPAIR, FaultAction("fail"))
        with pytest.raises(ObjectStoreError):
            repair_store(store)


class TestObservability:
    def test_repair_exports_counters(self):
        device, store, obs = build_demo_store()
        inject(device, store, "refcount")
        repair_store(store)
        by_name = {
            inst.name: inst.value for inst in obs.registry.collect()
        }
        assert by_name["objstore.fsck.findings_total"] == 1
        assert by_name["objstore.fsck.repairs_total"] == 1
