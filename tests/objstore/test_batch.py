"""The coalescing ``WriteBatch`` layer (batched checkpoint flush)."""

import pytest

from repro.errors import ObjectStoreError, PowerCut
from repro.fault import names as fault_names
from repro.fault.registry import FailpointRegistry, FaultAction
from repro.hw.nvme import NvmeDevice
from repro.objstore import MAX_BATCH_EXTENT
from repro.objstore.store import ObjectStore
from repro.sim.clock import SimClock
from repro.units import PAGE_SIZE


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def nvme(clock):
    return NvmeDevice(clock, queue_depth=8)


@pytest.fixture
def store(nvme):
    return ObjectStore(nvme)


class TestCoalescing:
    def test_contiguous_records_merge_into_one_command(self, store, nvme):
        batch = store.begin_batch()
        refs = [batch.add_page(b"pg-%04d" % i) for i in range(32)]
        writes_before = nvme.stats.writes
        batch.flush()
        # First-fit allocation lays the records end-to-end, so the
        # whole batch coalesces into a single multi-page extent.
        assert nvme.stats.writes - writes_before == 1
        assert nvme.stats.doorbells == 1
        assert batch.records_flushed == 32
        assert batch.extents_flushed == 1
        for i, ref in enumerate(refs):
            assert store.read_page(ref) == b"pg-%04d" % i

    def test_logical_cap_splits_runs(self, store):
        # Probe the on-media record size (page + framing), then cap
        # each coalesced command at exactly two records.  The cap
        # applies to RAW page inflation; codec off so every record is
        # the same size (codec behaviour is pinned in test_codec.py).
        store.codec.enabled = False
        probe = store.begin_batch()
        probe.add_page(b"probe")
        per_record = probe.pending_bytes
        probe.flush()
        batch = store.begin_batch(max_extent_bytes=2 * per_record)
        for i in range(8):
            batch.add_page(b"cap-%04d" % i)
        batch.flush()
        assert batch.extents_flushed == 4

    def test_default_cap_bounds_on_media_run_size(self, store, nvme):
        store.codec.enabled = False  # cap semantics on RAW page inflation
        pages = 2 * MAX_BATCH_EXTENT // PAGE_SIZE
        batch = store.begin_batch()
        for i in range(pages):
            batch.add_page(b"big-%04d" % i)
        buffered = batch.pending_bytes
        batch.flush()
        assert buffered > MAX_BATCH_EXTENT
        assert batch.extents_flushed >= 2
        assert batch.bytes_flushed == buffered

    def test_meta_and_pages_mix(self, store):
        batch = store.begin_batch()
        meta = batch.add_meta(oid=7, value={"pid": 7})
        page = batch.add_page(b"payload")
        batch.flush()
        assert store.read_meta(meta) == {"pid": 7}
        assert store.read_page(page) == b"payload"

    def test_empty_flush_is_noop(self, store, nvme):
        batch = store.begin_batch()
        assert batch.flush() == []
        assert nvme.stats.doorbells == 0
        assert store.stats.batches_flushed == 0


class TestDedupInBatch:
    def test_dedup_hit_skips_buffering(self, store):
        batch = store.begin_batch()
        a = batch.add_page(b"identical")
        b = batch.add_page(b"identical")
        assert a.extent.offset == b.extent.offset
        assert batch.pending_records == 1
        batch.flush()
        assert store.stats.pages_written == 1
        assert store.stats.pages_deduped == 1

    def test_dedup_against_prior_unbatched_write(self, store):
        first = store.write_page(b"seen before")
        batch = store.begin_batch()
        again = batch.add_page(b"seen before")
        assert again.extent.offset == first.extent.offset
        assert len(batch) == 0


class TestCommitOrdering:
    def test_commit_auto_flushes_open_batch(self, store):
        batch = store.begin_batch()
        refs = [batch.add_page(b"auto-%d" % i) for i in range(4)]
        snap = store.commit_snapshot(
            "auto", meta=None, records=[], pages=refs
        )
        assert len(batch) == 0
        assert batch.flushes == 1
        _meta, _records, pages = store.load_manifest(snap)
        assert [store.read_page(p) for p in pages] == [
            b"auto-%d" % i for i in range(4)
        ]

    def test_superblock_ordered_after_batch_data(self, store, nvme):
        # FIFO durability: everything submitted before the superblock
        # completes no later than it, so a named snapshot implies all
        # of its batched records are on media.
        batch = store.begin_batch()
        refs = [batch.add_page(b"ord-%d" % i) for i in range(8)]
        store.commit_snapshot("ordered", meta=None, records=[], pages=refs)
        data_done = max(t.completes_at for t in batch.last_tickets)
        assert nvme.pending_deadline() >= data_done

    def test_sync_write_cannot_join_batch(self, store):
        batch = store.begin_batch()
        with pytest.raises(ObjectStoreError):
            store.write_page(b"sync", sync=True, batch=batch)


class TestBatchCrash:
    def arm(self, clock, store, site, action):
        registry = FailpointRegistry(clock=clock, seed=2)
        store.attach_faults(registry)
        store.device.attach_faults(registry)
        registry.arm(site, action)
        return registry

    def test_crash_at_batch_boundary_loses_only_unnamed(
        self, clock, store, nvme
    ):
        durable = store.commit_snapshot(
            "durable", meta=None, records=[],
            pages=[store.write_page(b"kept")],
        )
        nvme.flush_barrier()
        self.arm(clock, store, fault_names.FP_STORE_BATCH_FLUSH,
                 FaultAction("crash"))
        batch = store.begin_batch()
        for i in range(4):
            batch.add_page(b"lost-%d" % i)
        with pytest.raises(PowerCut):
            store.commit_snapshot("torn", meta=None, records=[], pages=[])
        nvme.crash()
        report = store.recover()
        assert not report.errors
        names = [s.name for s in store.snapshots()]
        assert "durable" in names and "torn" not in names
        _meta, _records, pages = store.load_manifest(
            store.snapshot_by_name("durable")
        )
        assert store.read_page(pages[0]) == b"kept"

    def test_flush_failure_leaves_store_usable(self, clock, store):
        self.arm(clock, store, fault_names.FP_STORE_BATCH_FLUSH,
                 FaultAction("fail"))
        batch = store.begin_batch()
        batch.add_page(b"doomed")
        with pytest.raises(ObjectStoreError):
            batch.flush()
        # The armed point fired once; the retry goes through.
        batch.add_page(b"retried")
        batch.flush()
        assert store.stats.batches_flushed == 1

    def test_recover_drops_open_batch(self, clock, store, nvme):
        batch = store.begin_batch()
        batch.add_page(b"abandoned")
        nvme.crash()
        store.recover()
        assert store._open_batch is None


class TestAccounting:
    def test_store_stats_and_bytes(self, store):
        batch = store.begin_batch()
        for i in range(6):
            batch.add_page(b"acct-%d" % i)
        buffered = batch.pending_bytes
        # Tiny compressible payloads on an armed device go through the
        # write-path codec: the buffered media footprint is a fraction
        # of what six raw pages would have cost.
        assert buffered < 6 * PAGE_SIZE
        assert store.stats.pages_compressed == 6
        assert store.stats.encoded_bytes_saved > 0
        batch.flush()
        assert store.stats.batches_flushed == 1
        assert store.stats.batch_records == 6
        assert store.stats.batch_extents >= 1
        assert batch.bytes_flushed == buffered

    def test_batch_reusable_across_flushes(self, store):
        batch = store.begin_batch()
        batch.add_page(b"first wave")
        batch.flush()
        batch.add_page(b"second wave")
        batch.flush()
        assert batch.flushes == 2
        assert batch.records_flushed == 2
