"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.backends import MemoryBackend, make_disk_backend
from repro.core.orchestrator import SLS
from repro.hw.nvme import NvmeDevice
from repro.mem.address_space import AddressSpace, MemContext
from repro.mem.cow import AuroraCow
from repro.mem.phys import PhysicalMemory
from repro.objstore.store import ObjectStore
from repro.posix.kernel import Kernel
from repro.posix.syscalls import Syscalls
from repro.sim.clock import SimClock
from repro.units import GIB, MIB


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def phys():
    return PhysicalMemory(total_bytes=4 * GIB)


@pytest.fixture
def mem(clock, phys):
    return MemContext(clock, phys)


@pytest.fixture
def cow(mem):
    return AuroraCow(mem)


@pytest.fixture
def aspace(mem, cow):
    return AddressSpace(mem, "test")


@pytest.fixture
def nvme(clock):
    return NvmeDevice(clock)


@pytest.fixture
def store(nvme):
    return ObjectStore(nvme)


@pytest.fixture
def kernel():
    return Kernel(memory_bytes=8 * GIB)


@pytest.fixture
def sls(kernel):
    return SLS(kernel)


@pytest.fixture
def disk_backend(kernel):
    return make_disk_backend(kernel, NvmeDevice(kernel.clock))


@pytest.fixture
def memory_backend():
    return MemoryBackend("memory")


@pytest.fixture
def app_proc(kernel):
    """A process with a small populated heap, ready to checkpoint."""
    proc = kernel.spawn("app")
    sys = Syscalls(kernel, proc)
    entry = sys.mmap(2 * MIB, name="heap")
    sys.populate(entry.start, 2 * MIB, fill_fn=lambda i: b"page-%d" % i)
    proc.heap_start = entry.start  # test convenience
    return proc
