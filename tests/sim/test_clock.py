"""Unit tests for the virtual clock."""

import pytest

from repro.errors import ClockError
from repro.sim.clock import SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0

    def test_custom_start(self):
        assert SimClock(start=100).now == 100

    def test_negative_start_rejected(self):
        with pytest.raises(ClockError):
            SimClock(start=-1)

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(10)
        clock.advance(5)
        assert clock.now == 15

    def test_advance_returns_new_now(self):
        clock = SimClock()
        assert clock.advance(7) == 7

    def test_negative_advance_rejected(self):
        clock = SimClock()
        with pytest.raises(ClockError):
            clock.advance(-1)

    def test_advance_to_moves_forward(self):
        clock = SimClock()
        clock.advance_to(50)
        assert clock.now == 50

    def test_advance_to_past_is_noop(self):
        clock = SimClock(start=100)
        clock.advance_to(50)
        assert clock.now == 100

    def test_zero_advance_allowed(self):
        clock = SimClock()
        clock.advance(0)
        assert clock.now == 0


class TestClockRegion:
    def test_region_measures_elapsed(self):
        clock = SimClock()
        with clock.region() as region:
            clock.advance(42)
        assert region.elapsed == 42

    def test_region_open_elapsed_tracks_now(self):
        clock = SimClock()
        region = clock.region()
        clock.advance(10)
        assert region.elapsed == 10
        clock.advance(10)
        assert region.elapsed == 20

    def test_region_frozen_after_exit(self):
        clock = SimClock()
        with clock.region() as region:
            clock.advance(5)
        clock.advance(100)
        assert region.elapsed == 5

    def test_nested_regions(self):
        clock = SimClock()
        with clock.region() as outer:
            clock.advance(10)
            with clock.region() as inner:
                clock.advance(5)
        assert inner.elapsed == 5
        assert outer.elapsed == 15
