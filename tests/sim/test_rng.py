"""Unit tests for deterministic RNG streams."""

from repro.sim.rng import RngFactory, zipf_sampler


class TestRngFactory:
    def test_same_name_same_stream(self):
        factory = RngFactory(42)
        a = factory.stream("workload")
        b = factory.stream("workload")
        assert a is b

    def test_reproducible_across_factories(self):
        stream1 = RngFactory(7).stream("x")
        seq1 = [stream1.random() for _ in range(5)]
        stream2 = RngFactory(7).stream("x")
        seq2 = [stream2.random() for _ in range(5)]
        assert seq1 == seq2

    def test_different_names_independent(self):
        factory = RngFactory(7)
        a = factory.stream("a").random()
        b = factory.stream("b").random()
        assert a != b

    def test_adding_stream_does_not_perturb_existing(self):
        f1 = RngFactory(7)
        s = f1.stream("main")
        first = s.random()
        f2 = RngFactory(7)
        f2.stream("other")  # extra consumer
        assert f2.stream("main").random() == first

    def test_fork_independence(self):
        factory = RngFactory(7)
        child = factory.fork("child")
        assert factory.stream("x").random() != child.stream("x").random()


class TestZipf:
    def test_range(self):
        factory = RngFactory(1)
        sample = zipf_sampler(factory.stream("z"), n=100, skew=0.99)
        values = [sample() for _ in range(1000)]
        assert all(0 <= v < 100 for v in values)

    def test_skew_concentrates_mass(self):
        factory = RngFactory(1)
        sample = zipf_sampler(factory.stream("z"), n=1000, skew=1.2)
        values = [sample() for _ in range(5000)]
        top_decile = sum(1 for v in values if v < 100)
        assert top_decile > len(values) * 0.5

    def test_zero_skew_is_near_uniform(self):
        factory = RngFactory(1)
        sample = zipf_sampler(factory.stream("z"), n=10, skew=0.0)
        values = [sample() for _ in range(10000)]
        counts = [values.count(i) for i in range(10)]
        assert min(counts) > 700  # ~1000 each ± noise

    def test_invalid_args(self):
        import pytest

        factory = RngFactory(1)
        with pytest.raises(ValueError):
            zipf_sampler(factory.stream("z"), n=0)
        with pytest.raises(ValueError):
            zipf_sampler(factory.stream("z"), n=10, skew=-1)
