"""Unit tests for the discrete-event queue."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import SimClock
from repro.sim.event import EventQueue


@pytest.fixture
def queue():
    return EventQueue(SimClock())


class TestScheduling:
    def test_schedule_and_run(self, queue):
        fired = []
        queue.schedule(100, lambda: fired.append(1))
        queue.run_until(100)
        assert fired == [1]
        assert queue.clock.now == 100

    def test_event_not_due_does_not_fire(self, queue):
        fired = []
        queue.schedule(100, lambda: fired.append(1))
        queue.run_until(99)
        assert fired == []

    def test_past_scheduling_rejected(self, queue):
        queue.clock.advance(50)
        with pytest.raises(SimulationError):
            queue.schedule(49, lambda: None)

    def test_schedule_after_relative(self, queue):
        queue.clock.advance(10)
        handle = queue.schedule_after(5, lambda: None)
        assert handle.when == 15

    def test_ordering_by_time(self, queue):
        order = []
        queue.schedule(20, lambda: order.append("b"))
        queue.schedule(10, lambda: order.append("a"))
        queue.run_until(30)
        assert order == ["a", "b"]

    def test_fifo_tiebreak_at_same_time(self, queue):
        order = []
        queue.schedule(10, lambda: order.append("first"))
        queue.schedule(10, lambda: order.append("second"))
        queue.run_until(10)
        assert order == ["first", "second"]

    def test_clock_advances_to_each_event(self, queue):
        seen = []
        queue.schedule(10, lambda: seen.append(queue.clock.now))
        queue.schedule(30, lambda: seen.append(queue.clock.now))
        queue.run_until(50)
        assert seen == [10, 30]
        assert queue.clock.now == 50


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, queue):
        fired = []
        handle = queue.schedule(10, lambda: fired.append(1))
        handle.cancel()
        queue.run_until(20)
        assert fired == []

    def test_len_ignores_cancelled(self, queue):
        handle = queue.schedule(10, lambda: None)
        queue.schedule(20, lambda: None)
        assert len(queue) == 2
        handle.cancel()
        assert len(queue) == 1

    def test_next_deadline_skips_cancelled(self, queue):
        first = queue.schedule(10, lambda: None)
        queue.schedule(20, lambda: None)
        first.cancel()
        assert queue.next_deadline() == 20


class TestLiveCounter:
    """``__len__`` is a maintained counter, not an O(n) heap scan —
    these pin the bookkeeping across every path that changes it."""

    def test_double_cancel_decrements_once(self, queue):
        handle = queue.schedule(10, lambda: None)
        queue.schedule(20, lambda: None)
        handle.cancel()
        handle.cancel()
        assert len(queue) == 1

    def test_dispatch_decrements(self, queue):
        queue.schedule(10, lambda: None)
        queue.schedule(20, lambda: None)
        queue.run_until(10)
        assert len(queue) == 1
        queue.run_until(20)
        assert len(queue) == 0

    def test_cancelled_pop_does_not_double_count(self, queue):
        # Cancelling already decremented; the lazy heap pop during
        # dispatch must not decrement again.
        handle = queue.schedule(10, lambda: None)
        queue.schedule(20, lambda: None)
        handle.cancel()
        queue.run_until(30)
        assert len(queue) == 0

    def test_cancel_after_fire_is_noop(self, queue):
        handle = queue.schedule(10, lambda: None)
        queue.run_until(10)
        handle.cancel()
        assert len(queue) == 0

    def test_drain_with_mixed_cancellations(self, queue):
        fired = []
        keep = queue.schedule(10, lambda: fired.append("keep"))
        drop = queue.schedule(15, lambda: fired.append("drop"))
        drop.cancel()
        queue.schedule(20, lambda: fired.append("tail"))
        assert len(queue) == 2
        queue.drain()
        assert fired == ["keep", "tail"]
        assert len(queue) == 0
        del keep

    def test_len_matches_brute_force_scan(self, queue):
        handles = [queue.schedule(10 * i, lambda: None) for i in range(1, 9)]
        for handle in handles[::2]:
            handle.cancel()
        live = sum(1 for e in queue._heap if not e.cancelled)
        assert len(queue) == live == 4


class TestDrain:
    def test_drain_runs_everything(self, queue):
        fired = []
        queue.schedule(10, lambda: fired.append("a"))
        queue.schedule(500, lambda: fired.append("b"))
        count = queue.drain()
        assert count == 2
        assert fired == ["a", "b"]
        assert queue.clock.now == 500

    def test_drain_runs_chained_events(self, queue):
        fired = []

        def first():
            fired.append("first")
            queue.schedule_after(10, lambda: fired.append("second"))

        queue.schedule(5, first)
        queue.drain()
        assert fired == ["first", "second"]
        assert queue.clock.now == 15

    def test_drain_empty_queue(self, queue):
        assert queue.drain() == 0
