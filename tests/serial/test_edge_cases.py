"""Serializer edge cases: listeners, missing directories, deep trees."""

import pytest

from repro.objstore.record import decode, encode
from repro.posix.fd import O_CREAT, O_RDWR
from repro.posix.kernel import Kernel
from repro.posix.syscalls import Syscalls
from repro.serial.procsnap import restore_group, serialize_group
from repro.units import KIB


@pytest.fixture
def kernel():
    return Kernel()


def roundtrip(kernel, procs, target=None, **kwargs):
    meta, ctx = serialize_group(procs, kernel)
    target = target or Kernel(hostname="restore-host")
    restored, rctx = restore_group(decode(encode(meta)), target, **kwargs)
    return restored, rctx, target


class TestListenerRestore:
    def test_listening_socket_rebinds(self, kernel):
        server = kernel.spawn("server")
        sys = Syscalls(kernel, server)
        sys.bind_listen("service.sock")
        restored, _, target = roundtrip(kernel, [server])
        # The restored listener accepts new connections on the target.
        client = target.spawn("client")
        csys = Syscalls(target, client)
        cfd = csys.connect("service.sock")
        rsys = Syscalls(target, restored[0])
        sfd = rsys.accept(0)  # fd 0 = the listener
        csys.write(cfd, b"fresh-connection")
        assert rsys.read(sfd, 16) == b"fresh-connection"

    def test_pending_accept_queue_not_lost_silently(self, kernel):
        """Connections pending in the accept queue at checkpoint time
        come from peers outside the group; after restore the listener
        is empty but functional (the paper's boundary semantics)."""
        server = kernel.spawn("server")
        outsider = kernel.spawn("outsider")
        ssys = Syscalls(kernel, server)
        osys = Syscalls(kernel, outsider)
        ssys.bind_listen("svc")
        osys.connect("svc")  # queued, never accepted
        restored, _, target = roundtrip(kernel, [server])
        from repro.errors import WouldBlock

        with pytest.raises(WouldBlock):
            Syscalls(target, restored[0]).accept(0)


class TestFileEdgeCases:
    def test_file_in_missing_directory_falls_back_anonymous(self, kernel):
        sys = Syscalls(kernel, kernel.spawn("app"))
        sys.mkdir("/data")
        fd = sys.open("/data/file", O_RDWR | O_CREAT)
        sys.write(fd, b"payload")
        # Restore into a kernel that has no /data directory: the file
        # comes back anonymous rather than failing the whole restore.
        restored, _, target = roundtrip(kernel, [kernel.procs.lookup(2)])
        rsys = Syscalls(target, restored[0])
        rsys.lseek(fd, 0)
        assert rsys.read(fd, 7) == b"payload"

    def test_deep_process_tree(self, kernel):
        root = kernel.spawn("gen0")
        current = root
        for _ in range(6):
            current = kernel.fork(current)
        restored, _, target = roundtrip(kernel, list(root.walk_tree()))
        assert len(restored) == 7
        depth = 0
        proc = restored[-1]
        while proc.parent is not None and proc.parent in restored:
            depth += 1
            proc = proc.parent
        assert depth == 6

    def test_empty_group_roundtrip(self, kernel):
        loner = kernel.spawn("loner")  # no fds, no mappings
        restored, _, target = roundtrip(kernel, [loner])
        assert restored[0].name == "loner"
        assert len(restored[0].aspace.entries) == 0

    def test_offsets_preserved_across_dup_chains(self, kernel):
        proc = kernel.spawn("app")
        sys = Syscalls(kernel, proc)
        fd = sys.open("/f", O_RDWR | O_CREAT)
        sys.write(fd, b"0123456789")
        d1 = sys.dup(fd)
        d2 = sys.dup(d1)
        sys.lseek(d2, 4)
        restored, _, target = roundtrip(kernel, [proc])
        rsys = Syscalls(target, restored[0])
        # All three descriptors share one offset of 4.
        assert rsys.read(fd, 2) == b"45"
        assert rsys.read(d1, 2) == b"67"
        assert rsys.read(d2, 2) == b"89"


class TestChargedCosts:
    def test_serialization_counts_scale_with_state(self, kernel):
        small = kernel.spawn("small")
        _, small_ctx = serialize_group([small], kernel)
        big = kernel.spawn("big")
        sys = Syscalls(kernel, big)
        for i in range(10):
            sys.open(f"/file-{i}", O_RDWR | O_CREAT)
        sys.mmap(64 * KIB)
        _, big_ctx = serialize_group([big], kernel)
        assert big_ctx.objects_serialized > small_ctx.objects_serialized + 10
