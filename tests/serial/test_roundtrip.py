"""Serializer round-trip tests: the object graph survives intact."""

import pytest

from repro.objstore.record import decode, encode
from repro.posix.fd import O_CREAT, O_RDWR
from repro.posix.kernel import Kernel
from repro.posix.process import ThreadState
from repro.posix.signals import SIGUSR1
from repro.posix.socket import SocketFile
from repro.posix.syscalls import Syscalls
from repro.serial.procsnap import restore_group, serialize_group
from repro.serial.registry import registered_types
from repro.units import KIB, MIB


@pytest.fixture
def kernel():
    return Kernel()


def roundtrip(kernel, procs, target=None, **kwargs):
    """Serialize through the codec (as the store would) and restore."""
    meta, ctx = serialize_group(procs, kernel)
    blob = encode(meta)
    target = target or Kernel(hostname="restore-host")
    restored, rctx = restore_group(decode(blob), target, **kwargs)
    return restored, rctx, target, ctx


class TestProcessState:
    def test_identity_fields(self, kernel):
        proc = kernel.spawn("daemon")
        proc.cwd = "/var/db"
        proc.umask = 0o077
        proc.argv = ["daemon", "-f"]
        proc.env = {"HOME": "/root"}
        restored, *_ = roundtrip(kernel, [proc])
        got = restored[0]
        assert (got.pid, got.name) == (proc.pid, "daemon")
        assert got.cwd == "/var/db"
        assert got.umask == 0o077
        assert got.argv == ["daemon", "-f"]
        assert got.env == {"HOME": "/root"}

    def test_cpu_registers(self, kernel):
        proc = kernel.spawn("app")
        proc.main_thread.cpu.rip = 0x401234
        proc.main_thread.cpu.gp["rsp"] = 0x7FFF0000
        proc.main_thread.cpu.fpu = b"\xaa" * 64
        restored, *_ = roundtrip(kernel, [proc])
        cpu = restored[0].main_thread.cpu
        assert cpu.rip == 0x401234
        assert cpu.gp["rsp"] == 0x7FFF0000
        assert cpu.fpu == b"\xaa" * 64

    def test_multiple_threads(self, kernel):
        proc = kernel.spawn("app")
        extra = proc.spawn_thread()
        extra.state = ThreadState.SLEEPING
        extra.wait_channel = "select"
        restored, *_ = roundtrip(kernel, [proc])
        assert len(restored[0].threads) == 2
        assert restored[0].threads[1].state is ThreadState.SLEEPING
        assert restored[0].threads[1].wait_channel == "select"

    def test_pending_signals(self, kernel):
        proc = kernel.spawn("app")
        proc.signals.send(SIGUSR1)
        proc.signals.block(12)
        proc.signals.set_handler(SIGUSR1, "handler_fn")
        restored, *_ = roundtrip(kernel, [proc])
        signals = restored[0].signals
        assert SIGUSR1 in signals.pending
        assert 12 in signals.blocked
        assert signals.disposition(SIGUSR1) == "handler_fn"

    def test_process_tree_links(self, kernel):
        parent = kernel.spawn("parent")
        child = kernel.fork(parent)
        grandchild = kernel.fork(child)
        restored, *_ = roundtrip(kernel, list(parent.walk_tree()))
        by_name = {p.pid: p for p in restored}
        assert by_name[child.pid].parent is by_name[parent.pid]
        assert by_name[grandchild.pid].parent is by_name[child.pid]

    def test_pid_preservation_and_fallback(self, kernel):
        proc = kernel.spawn("app")
        restored, _, target, _ = roundtrip(kernel, [proc])
        assert restored[0].pid == proc.pid
        # Restoring again into the same kernel: pid taken -> fresh pid.
        meta, _ = serialize_group([proc], kernel)
        again, _ = restore_group(meta, target, preserve_pids=True)
        assert again[0].pid != proc.pid


class TestDescriptors:
    def test_dup_shares_description_after_restore(self, kernel):
        proc = kernel.spawn("app")
        sys = Syscalls(kernel, proc)
        fd = sys.open("/file", O_RDWR | O_CREAT)
        sys.write(fd, b"0123456789")
        dup_fd = sys.dup(fd)
        restored, *_ = roundtrip(kernel, [proc])
        table = restored[0].fdtable
        assert table.lookup(fd) is table.lookup(dup_fd)
        assert table.lookup(fd).offset == 10

    def test_fork_shared_description_across_processes(self, kernel):
        parent = kernel.spawn("app")
        sys = Syscalls(kernel, parent)
        fd = sys.open("/shared", O_RDWR | O_CREAT)
        sys.write(fd, b"abcdef")
        child = sys.fork()
        restored, *_ = roundtrip(kernel, list(parent.walk_tree()))
        p, c = restored
        assert p.fdtable.lookup(fd) is c.fdtable.lookup(fd)

    def test_file_content_and_offset(self, kernel):
        proc = kernel.spawn("app")
        sys = Syscalls(kernel, proc)
        fd = sys.open("/data", O_RDWR | O_CREAT)
        sys.write(fd, b"persistent content")
        sys.lseek(fd, 11)
        restored, _, target, _ = roundtrip(kernel, [proc])
        rsys = Syscalls(target, restored[0])
        assert rsys.read(fd, 7) == b"content"

    def test_anonymous_file_restored(self, kernel):
        proc = kernel.spawn("app")
        sys = Syscalls(kernel, proc)
        fd = sys.open("/tmpfile", O_RDWR | O_CREAT)
        sys.write(fd, b"anon data")
        sys.unlink("/tmpfile")
        restored, _, target, _ = roundtrip(kernel, [proc])
        rsys = Syscalls(target, restored[0])
        rsys.lseek(fd, 0)
        assert rsys.read(fd, 9) == b"anon data"
        assert restored[0].fdtable.lookup(fd).vnode.nlink == 0

    def test_pipe_inflight_data(self, kernel):
        proc = kernel.spawn("app")
        sys = Syscalls(kernel, proc)
        r, w = sys.pipe()
        sys.write(w, b"unread")
        restored, _, target, _ = roundtrip(kernel, [proc])
        assert Syscalls(target, restored[0]).read(r, 6) == b"unread"

    def test_socketpair_relinked(self, kernel):
        proc = kernel.spawn("app")
        sys = Syscalls(kernel, proc)
        a, b = sys.socketpair()
        sys.write(a, b"buffered")
        restored, _, target, _ = roundtrip(kernel, [proc])
        rsys = Syscalls(target, restored[0])
        assert rsys.read(b, 8) == b"buffered"
        # Peering restored: new writes still flow.
        rsys.write(b, b"reply")
        assert rsys.read(a, 5) == b"reply"

    def test_socket_peer_outside_group_degrades(self, kernel):
        server = kernel.spawn("server")
        client = kernel.spawn("client")  # sibling, NOT in the group
        ssys, csys = Syscalls(kernel, server), Syscalls(kernel, client)
        lfd = ssys.bind_listen("svc")
        cfd = csys.connect("svc")
        sfd = ssys.accept(lfd)
        csys.write(cfd, b"from-client")
        restored, _, target, _ = roundtrip(kernel, [server])
        rsys = Syscalls(target, restored[0])
        # Buffered data survives; the dangling peer reads as EOF-ish.
        assert rsys.read(sfd, 11) == b"from-client"


class TestIpcObjects:
    def test_shared_memory_attachments(self, kernel):
        a = kernel.spawn("a")
        sys_a = Syscalls(kernel, a)
        seg = sys_a.shmget(99, 64 * KIB)
        addr = sys_a.shmat(seg)
        b = sys_a.fork()
        restored, _, target, _ = roundtrip(kernel, [a, b])
        ra, rb = restored
        rsys_a, rsys_b = Syscalls(target, ra), Syscalls(target, rb)
        # Sharing is preserved: a write lands in the same restored object.
        seg_a = ra.shm_attachments[addr]
        seg_b = rb.shm_attachments[addr]
        assert seg_a is seg_b

    def test_message_queue_contents(self, kernel):
        proc = kernel.spawn("app")
        sys = Syscalls(kernel, proc)
        sys.msgsnd(5, 2, b"queued-msg")
        restored, _, target, _ = roundtrip(kernel, [proc])
        rsys = Syscalls(target, restored[0])
        message = rsys.msgrcv(5)
        assert message.body == b"queued-msg"
        assert message.mtype == 2


class TestVmStructure:
    def test_entries_restored_exactly(self, kernel):
        proc = kernel.spawn("app")
        sys = Syscalls(kernel, proc)
        from repro.mem.address_space import PROT_READ

        sys.mmap(1 * MIB, name="heap")
        sys.mmap(64 * KIB, prot=PROT_READ, name="ro")
        restored, *_ = roundtrip(kernel, [proc])
        entries = restored[0].aspace.entries
        originals = proc.aspace.entries
        assert [(e.start, e.end, e.prot, e.shared, e.name) for e in entries] == [
            (e.start, e.end, e.prot, e.shared, e.name) for e in originals
        ]

    def test_shadow_chain_depth_preserved(self, kernel):
        proc = kernel.spawn("app")
        sys = Syscalls(kernel, proc)
        entry = sys.mmap(64 * KIB, name="heap")
        sys.poke(entry.start, b"gen0")
        child = sys.fork()
        grandchild = Syscalls(kernel, child).fork()
        restored, rctx, *_ = roundtrip(kernel, list(proc.walk_tree()))

        def depth(obj):
            count = 0
            while obj is not None:
                count += 1
                obj = obj.shadow
            return count

        orig = grandchild.aspace.entries[0].obj
        new = restored[2].aspace.entries[0].obj
        assert depth(new) == depth(orig)

    def test_mctl_flags_roundtrip(self, kernel):
        proc = kernel.spawn("app")
        sys = Syscalls(kernel, proc)
        entry = sys.mmap(64 * KIB, name="cache")
        entry.sls_exclude = True
        entry.restore_hint = "lazy"
        restored, *_ = roundtrip(kernel, [proc])
        got = restored[0].aspace.entries[0]
        assert got.sls_exclude is True
        assert got.restore_hint == "lazy"


class TestRegistry:
    def test_expected_serializers_registered(self):
        types = registered_types()
        assert "vnodefile" in types
        assert "pipeend" in types
        assert "socketfile" in types

    def test_object_counts_plausible(self, kernel):
        proc = kernel.spawn("app")
        sys = Syscalls(kernel, proc)
        sys.mmap(64 * KIB)
        sys.pipe()
        _, _, _, ctx = roundtrip(kernel, [proc])
        # proc + thread + 2 pipe ends + pipe + entry + vmobject ...
        assert ctx.objects_serialized >= 6
